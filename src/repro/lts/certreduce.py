"""Certificate-gated reduced view of a transition system.

:class:`ReducedSystem` wraps a :class:`~repro.jackal.model.JackalModel`
(or anything exposing ``config``/``variant``/``codec()``) and presents
the same ``TransitionSystem`` protocol, so *every* sweep backend —
serial :func:`~repro.lts.explore.explore`, the columnar
:func:`~repro.lts.engine.explore_fast`, and the multiprocessing
:func:`~repro.lts.distributed.distributed_explore` — reduces
identically with no per-backend BFS changes:

* **symmetry quotient** (``canonical=True``): every successor state is
  replaced by its orbit representative — the state with the minimal
  packed key under the certified permutation group — so the visited
  set counts orbits, not states;
* **ample pruning** (``ample=True``): when a *safe-class* transition
  (certified invisible and statically independent of every other
  enabled transition) is enabled, it alone is expanded; the commuting
  interleavings are pruned. Safe-class transitions strictly move queue
  content toward handlers and never re-enable each other, so a cycle
  of pruned states is impossible (the ignoring proviso holds).

Per-thread-indexed properties (Requirement 4's ``write(t)``
inevitability) are not invariant under the quotient's frame changes,
so the requirement driver runs them with ``canonical=False`` — ample
pruning alone preserves action traces up to invisible stuttering.

Construction *refuses* to reduce unless the certificate validates for
the wrapped system's exact configuration and variant (JKL303–JKL305);
there is no degraded mode. The wrapper counts ``canonical_hits``
(successors whose key changed under canonicalization) and
``ample_prunes`` (transitions pruned), which the backends surface as
``repro_reduce_*`` metrics and ``bench_explore`` turns into the
reported reduction factor.
"""

from __future__ import annotations

from repro.errors import ReproError


def _build_perms(cert):
    from repro.staticcheck.symmetry import Permutation

    return tuple(
        Permutation(tuple(entry["pid_map"]), tuple(entry["tid_map"]))
        for entry in cert.group
    )


class ReducedSystem:
    """A certified symmetry/ample-reduced view of ``system``."""

    def __init__(
        self,
        system,
        certificate,
        *,
        canonical: bool = True,
        ample: bool = True,
        _validated: bool = False,
    ):
        config = getattr(system, "config", None)
        variant = getattr(system, "variant", None)
        if config is None or variant is None:
            raise ReproError(
                "refusing to reduce: the wrapped system carries no "
                "config/variant to validate the certificate against "
                "(JKL305)"
            )
        if not _validated:
            from repro.staticcheck.certificates import validate

            findings = validate(certificate, config, variant)
            if findings:
                reasons = "; ".join(
                    f"{f.rule} {f.message}" for f in findings
                )
                raise ReproError(f"refusing to reduce: {reasons}")
        self.system = system
        self.certificate = certificate
        self.canonical = canonical
        self.ample = ample
        self._perms = _build_perms(certificate) if canonical else ()
        self._codec = system.codec()
        self._footprints: dict = {}
        self._safe: dict = {}
        #: successors whose visited key changed under canonicalization
        self.canonical_hits = 0
        #: commuting transitions pruned by singleton ample sets
        self.ample_prunes = 0

    # pickled into distributed workers; the parent already validated
    def __reduce__(self):
        return (
            _rebuild,
            (self.system, self.certificate, self.canonical, self.ample),
        )

    def __getattr__(self, name):
        if name == "system":  # guard: __init__ may not have run yet
            raise AttributeError(name)
        # config, variant, is_done_state, pid_of, ... fall through
        return getattr(self.system, name)

    def codec(self):
        return self._codec

    def initial_state(self):
        init = self.system.initial_state()
        if not self.canonical:
            return init
        return self._codec.canonicalize(init, self._perms)[1]

    # -- the reduction ---------------------------------------------------

    def _footprint(self, label):
        fp = self._footprints.get(label)
        if fp is None:
            from repro.staticcheck.independence import label_footprint

            fp = self._footprints[label] = label_footprint(
                label, self.system.config
            )
        return fp

    def _is_safe(self, label):
        safe = self._safe.get(label)
        if safe is None:
            from repro.staticcheck.independence import is_safe

            safe = self._safe[label] = is_safe(label)
        return safe

    def _prune(self, moves):
        if len(moves) < 2:
            return moves
        from repro.staticcheck.independence import may_commute

        fps = None
        for i, (label, _ns) in enumerate(moves):
            if not self._is_safe(label):
                continue
            if fps is None:
                fps = [self._footprint(lbl) for lbl, _ in moves]
            mine = fps[i]
            if all(
                may_commute(mine, fps[j])
                for j in range(len(moves))
                if j != i
            ):
                self.ample_prunes += len(moves) - 1
                return [moves[i]]
        return moves

    def _reduce_moves(self, moves):
        if self.ample:
            moves = self._prune(moves)
        if not self.canonical:
            return moves
        out = []
        canonicalize = self._codec.canonicalize
        perms = self._perms
        for label, ns in moves:
            _key, rep = canonicalize(ns, perms)
            if rep is not ns:
                self.canonical_hits += 1
            out.append((label, rep))
        return out

    def successors(self, state):
        return self._reduce_moves(self.system.successors(state))

    def successors_fast(self, state):
        base = getattr(self.system, "successors_fast", None)
        moves = base(state) if base else self.system.successors(state)
        return self._reduce_moves(moves)


def _rebuild(system, certificate, canonical, ample):
    return ReducedSystem(
        system,
        certificate,
        canonical=canonical,
        ample=ample,
        _validated=True,
    )
