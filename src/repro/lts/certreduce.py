"""Certificate-gated reduced view of a transition system.

:class:`ReducedSystem` wraps a :class:`~repro.jackal.model.JackalModel`
(or anything exposing ``config``/``variant``/``codec()``) and presents
the same ``TransitionSystem`` protocol, so *every* sweep backend —
serial :func:`~repro.lts.explore.explore`, the columnar
:func:`~repro.lts.engine.explore_fast`, and the multiprocessing
:func:`~repro.lts.distributed.distributed_explore` — reduces
identically with no per-backend BFS changes:

* **symmetry quotient** (``canonical=True``): every successor state is
  replaced by its orbit representative — the state with the minimal
  packed key under the certified permutation group — so the visited
  set counts orbits, not states;
* **ample pruning** (``ample=True``): when a *safe-class* transition
  (certified invisible and statically independent of every other
  enabled transition) is enabled, it alone is expanded; the commuting
  interleavings are pruned. Safe-class transitions strictly move queue
  content toward handlers and never re-enable each other, so a cycle
  of pruned states is impossible (the ignoring proviso holds);
* **field slicing** (``slice_fields``): every state is projected
  through the certificate's cone-of-influence slice
  (:mod:`repro.staticcheck.slicing`) before canonicalization — the
  certified-sliceable fields (the ``rstate`` bookkeeping family) are
  zeroed, merging states that differ only outside every requirement's
  cone of influence. The slice is certified to be a congruence
  (projection commutes with stepping), i.e. a strong bisimulation, so
  *all* verdicts, liveness included, are preserved. ``None`` (the
  default) takes the certificate's ``common_dropped`` set; pass ``()``
  to disable slicing (the canonical-only comparison ``bench_explore``
  reports).

Historically, per-thread-indexed properties (Requirement 4's
``write(t)`` inevitability) were not invariant under the quotient's
frame changes and the requirement driver ran them with
``canonical=False`` (ample-only). Schema-v3 certificates close that
gap: the ``formulas`` section (:mod:`repro.staticcheck.formulasym`)
proves each requirement family invariant or orbit-closed under the
certified group, and when it records ``plain_quotient: "full"`` the
driver runs the plain sweep under the full quotient and evaluates
Requirement 4 on the quotient's exact group-unfolding
(:func:`unfold_full_quotient`) — the annotated-quotient construction
that reconstructs concrete per-thread frames from quotient edges plus
their winning permutations.

Construction *refuses* to reduce unless the certificate validates for
the wrapped system's exact configuration and variant (JKL303–JKL305,
JKL401–404); there is no degraded mode. The wrapper counts
``canonical_hits`` (successors whose key changed under
canonicalization), ``ample_prunes`` (transitions pruned) and
``slice_hits`` (successors changed by projection), which the backends
surface as ``repro_reduce_*`` metrics and ``bench_explore`` turns into
the reported reduction factor.
"""

from __future__ import annotations

from repro.errors import ReproError


def _build_perms(cert):
    from repro.staticcheck.symmetry import Permutation

    return tuple(
        Permutation(tuple(entry["pid_map"]), tuple(entry["tid_map"]))
        for entry in cert.group
    )


class ReducedSystem:
    """A certified symmetry/ample-reduced view of ``system``."""

    def __init__(
        self,
        system,
        certificate,
        *,
        canonical: bool = True,
        ample: bool = True,
        slice_fields=None,
        _validated: bool = False,
    ):
        config = getattr(system, "config", None)
        variant = getattr(system, "variant", None)
        if config is None or variant is None:
            raise ReproError(
                "refusing to reduce: the wrapped system carries no "
                "config/variant to validate the certificate against "
                "(JKL305)"
            )
        if not _validated:
            from repro.staticcheck.certificates import validate

            findings = validate(certificate, config, variant)
            if findings:
                reasons = "; ".join(
                    f"{f.rule} {f.message}" for f in findings
                )
                raise ReproError(f"refusing to reduce: {reasons}")
        self.system = system
        self.certificate = certificate
        self.canonical = canonical
        self.ample = ample
        if slice_fields is None:
            from repro.staticcheck.slicing import certified_slice

            slice_fields = certified_slice(certificate)
        self.slice_fields = frozenset(slice_fields)
        self._perms = _build_perms(certificate) if canonical else ()
        self._codec = system.codec()
        self._project = (
            self._codec.projector(self.slice_fields)
            if self.slice_fields
            else None
        )
        self._footprints: dict = {}
        self._safe: dict = {}
        #: successors whose visited key changed under canonicalization
        self.canonical_hits = 0
        #: commuting transitions pruned by singleton ample sets
        self.ample_prunes = 0
        #: successors changed by the certified slice projection
        self.slice_hits = 0

    # pickled into distributed workers; the parent already validated
    def __reduce__(self):
        return (
            _rebuild,
            (
                self.system,
                self.certificate,
                self.canonical,
                self.ample,
                tuple(sorted(self.slice_fields)),
            ),
        )

    def __getattr__(self, name):
        if name == "system":  # guard: __init__ may not have run yet
            raise AttributeError(name)
        # config, variant, is_done_state, pid_of, ... fall through
        return getattr(self.system, name)

    def codec(self):
        return self._codec

    def initial_state(self):
        init = self.system.initial_state()
        if self._project is not None:
            init = self._project(init)
        if not self.canonical:
            return init
        return self._codec.canonicalize(init, self._perms)[1]

    # -- the reduction ---------------------------------------------------

    def _footprint(self, label):
        fp = self._footprints.get(label)
        if fp is None:
            from repro.staticcheck.independence import label_footprint

            fp = self._footprints[label] = label_footprint(
                label, self.system.config
            )
        return fp

    def _is_safe(self, label):
        safe = self._safe.get(label)
        if safe is None:
            from repro.staticcheck.independence import is_safe

            safe = self._safe[label] = is_safe(label)
        return safe

    def _prune(self, moves):
        if len(moves) < 2:
            return moves
        from repro.staticcheck.independence import may_commute

        fps = None
        for i, (label, _ns) in enumerate(moves):
            if not self._is_safe(label):
                continue
            if fps is None:
                fps = [self._footprint(lbl) for lbl, _ in moves]
            mine = fps[i]
            if all(
                may_commute(mine, fps[j])
                for j in range(len(moves))
                if j != i
            ):
                self.ample_prunes += len(moves) - 1
                return [moves[i]]
        return moves

    def _reduce_moves(self, moves):
        if self.ample:
            moves = self._prune(moves)
        project = self._project
        if project is not None:
            projected = []
            for label, ns in moves:
                ps = project(ns)
                if ps is not ns:
                    self.slice_hits += 1
                projected.append((label, ps))
            moves = projected
        if not self.canonical:
            return moves
        out = []
        canonicalize = self._codec.canonicalize
        perms = self._perms
        for label, ns in moves:
            _key, rep = canonicalize(ns, perms)
            if rep is not ns:
                self.canonical_hits += 1
            out.append((label, rep))
        return out

    def successors(self, state):
        return self._reduce_moves(self.system.successors(state))

    def successors_fast(self, state):
        base = getattr(self.system, "successors_fast", None)
        moves = base(state) if base else self.system.successors(state)
        return self._reduce_moves(moves)

    # -- permutation-annotated view (for the group-unfolding) -----------

    def _canonicalize_annotated(self, state):
        """``(representative, perm)`` with ``perm(state) == rep``
        (``None`` = identity)."""
        best_key = self._codec.encode(state)
        best, best_perm = state, None
        for perm in self._perms:
            permuted = perm.apply(state)
            key = self._codec.encode(permuted)
            if key < best_key:
                best_key, best, best_perm = key, permuted, perm
        return best, best_perm

    def annotated_initial(self):
        """The reduced initial state plus the permutation that produced
        it from the concrete initial state (``None`` = identity)."""
        init = self.system.initial_state()
        if self._project is not None:
            init = self._project(init)
        if not self.canonical:
            return init, None
        return self._canonicalize_annotated(init)

    def annotated_successors(self, state):
        """Reduced moves as ``(label, representative, perm)`` triples.

        Same pruning, slicing and canonicalization as
        :meth:`successors`, but each move keeps the permutation that
        mapped the concrete successor onto its representative
        (``None`` = identity). :func:`unfold_full_quotient` consumes
        this to rebuild exact per-index frames from the quotient.
        """
        moves = self.system.successors(state)
        if self.ample:
            moves = self._prune(moves)
        project = self._project
        out = []
        for label, ns in moves:
            if project is not None:
                ns = project(ns)
            if self.canonical:
                rep, perm = self._canonicalize_annotated(ns)
            else:
                rep, perm = ns, None
            out.append((label, rep, perm))
        return out


def unfold_full_quotient(system, certificate, *, _validated: bool = False):
    """The exact group-unfolding of ``system``'s full-quotient sweep.

    The plain quotient merges states that differ only by an index
    renaming, so a per-thread label like ``write(t0)`` loses its frame:
    from a symmetric state, ``write(t0)`` and ``write(t1)`` both lead
    to the same representative, where thread 0 is the writer. Formulas
    quoting concrete indices — Requirement 4's family, even its
    group-invariant orbit conjunction — are therefore *not* decidable
    on the quotient LTS itself (Emerson–Sistla preservation needs the
    atomic labels invariant, not just the whole formula).

    This helper rebuilds the frames. It explores the quotient once
    (memoizing each representative's annotated successor list) and
    unfolds its edges through the group: a node is ``(rep, γ)`` where
    γ is the accumulated renaming with ``concrete = γ(rep)``, and a
    quotient move ``rep --b--> rep'`` with winning permutation π
    (``rep' = π(ns)``) becomes

        ``(rep, γ) --γ(b)--> (rep', γ∘π⁻¹)``

    The result is label-exact: it is isomorphic to the sliced,
    ample-pruned concrete system (slicing is a certified congruence,
    ample pruning chooses equivariantly), so *any* µ-calculus formula —
    per-thread Requirement-4 included — evaluates on it with its
    concrete verdict. Each representative contributes at most |G|
    nodes, so the unfolding is bounded by the ample-reduced concrete
    size while the quotient sweep keeps the memory win.

    Returns a fully built :class:`~repro.lts.lts.LTS`.
    """
    from repro.lts.lts import LTS
    from repro.staticcheck.symmetry import Permutation

    red = ReducedSystem(system, certificate, _validated=_validated)
    codec = red.codec()
    config = system.config
    identity = Permutation(
        tuple(range(config.n_processors)), tuple(range(config.n_threads))
    )

    rep0, pi0 = red.annotated_initial()
    gamma0 = identity if pi0 is None else pi0.inverse()
    lts = LTS(0)
    index: dict = {}

    def node(rep_key, gamma):
        key = (rep_key, gamma)
        idx = index.get(key)
        if idx is None:
            idx = index[key] = lts.add_state()
        return idx

    key0 = codec.encode(rep0)
    node(key0, gamma0)
    # winning permutations memoized per representative: every (rep, γ)
    # node shares the rep's single quotient successor list
    succ_memo: dict = {}
    frontier = [(rep0, key0, gamma0)]
    while frontier:
        nxt = []
        for rep, rep_key, gamma in frontier:
            src = index[(rep_key, gamma)]
            moves = succ_memo.get(rep_key)
            if moves is None:
                moves = succ_memo[rep_key] = [
                    (
                        label,
                        rep2,
                        codec.encode(rep2),
                        None if pi is None else pi.inverse(),
                    )
                    for label, rep2, pi in red.annotated_successors(rep)
                ]
            for label, rep2, key2, pi_inv in moves:
                gamma2 = gamma if pi_inv is None else gamma.compose(pi_inv)
                known = (key2, gamma2) in index
                dst = node(key2, gamma2)
                lts.add_transition(src, gamma.apply_label(label), dst)
                if not known:
                    nxt.append((rep2, key2, gamma2))
        frontier = nxt
    return lts


def _rebuild(system, certificate, canonical, ample, slice_fields=None):
    return ReducedSystem(
        system,
        certificate,
        canonical=canonical,
        ample=ample,
        slice_fields=slice_fields,
        _validated=True,
    )
