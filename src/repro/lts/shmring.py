"""Shared-memory ring buffers for the distributed sweep's data plane.

The pickled-queue transport routes every successor bucket through the
coordinator: each hop pays a pickle, an OS pipe write, an unpickle, a
coordinator dispatch, and the same again towards the owner. This module
provides the replacement data plane — one single-producer
single-consumer :class:`RingBuffer` per ordered worker pair, backed by
:mod:`multiprocessing.shared_memory` — so workers forward packed codec
keys **directly to their owners** as flat little-endian byte blocks and
the coordinator drops off the steady-state path entirely (it keeps only
control traffic: acknowledgements, termination counting, liveness and
the crash-recovery ledger).

Layout of one ring (``HEADER_BYTES`` header + ``capacity`` data bytes)::

    u64 wr_bytes   cumulative bytes written   (producer-owned)
    u64 rd_bytes   cumulative bytes consumed  (consumer-owned)
    u64 wr_recs    cumulative records written (producer-owned)
    u64 rd_recs    cumulative records consumed(consumer-owned)
    ... capacity data bytes ...

Counters are *cumulative*, never wrapped: ``wr_bytes - rd_bytes`` is
the number of unconsumed bytes and ``wr_bytes % capacity`` the physical
write offset. Each record is stored contiguously as ``u32 payload_len |
u32 depth | payload``; a record that would straddle the end of the data
area is preceded by a pad — a ``0xFFFFFFFF`` length marker (or, when
fewer than 8 bytes remain, nothing at all) — telling the consumer to
skip to offset 0. Every counter is written with a single aligned 8-byte
store *after* its payload, which on CPython (one bytecode holding the
GIL per store) plus any mainstream memory model is enough for the
one-producer/one-consumer discipline used here.

The exactness contract of the fault-tolerant sweep extends to rings:
a consumer advances ``rd_*`` only *after* the acknowledgement covering
those records has been handed to the coordinator, so everything a dead
worker consumed-but-never-acked is still physically in its inbound
rings and :meth:`RingBuffer.drain_unconsumed` (coordinator crash path,
producers known stopped) recovers it.

:class:`AdaptiveBatch` is the transport's pacing controller: the queue
backend's fixed 256-state batches are far too small for fast models
(thousands of per-batch round trips) and too large for slow ones. It
tracks an exponential moving average of the measured expansion rate and
sizes the next quantum to a wall-clock target.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

_U32 = struct.Struct("<I")
_REC = struct.Struct("<II")  # payload_len, depth
_CTR = struct.Struct("<Q")

#: ring header size: 4 cache-line-separable u64 counters, padded
HEADER_BYTES = 32
#: length-field value marking "pad to end of data area, wrap to 0"
_PAD_MARK = 0xFFFFFFFF
#: per-record framing overhead
_REC_OVERHEAD = _REC.size

#: default data capacity of one ring (per ordered worker pair)
DEFAULT_RING_BYTES = 1 << 20


class RingBuffer:
    """One SPSC shared-memory ring (see module docstring for layout).

    The coordinator :meth:`create`\\ s every ring before forking;
    workers inherit the mapped objects through ``fork`` and use the
    producer side (:meth:`try_write`) of their outbound rings and the
    consumer side (:meth:`peek` / :meth:`commit`) of their inbound
    ones. Nothing here locks: each counter has exactly one writer.
    """

    __slots__ = ("_shm", "capacity", "_buf", "_owned")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owned: bool = False):
        self._shm = shm
        self.capacity = capacity
        self._buf = shm.buf
        self._owned = owned

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "RingBuffer":
        """Allocate a zeroed ring of ``capacity`` data bytes."""
        if capacity < 64:
            raise ValueError("ring capacity must be >= 64 bytes")
        shm = shared_memory.SharedMemory(
            create=True, size=HEADER_BYTES + capacity
        )
        shm.buf[:HEADER_BYTES] = b"\x00" * HEADER_BYTES
        return cls(shm, capacity, owned=True)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- counters (each has exactly one writing process) -------------

    def _get(self, off: int) -> int:
        return _CTR.unpack_from(self._buf, off)[0]

    def _set(self, off: int, value: int) -> None:
        _CTR.pack_into(self._buf, off, value)

    @property
    def wr_bytes(self) -> int:
        return self._get(0)

    @property
    def rd_bytes(self) -> int:
        return self._get(8)

    @property
    def wr_recs(self) -> int:
        return self._get(16)

    @property
    def rd_recs(self) -> int:
        return self._get(24)

    def counters(self) -> tuple[int, int, int, int]:
        """``(wr_bytes, rd_bytes, wr_recs, rd_recs)`` snapshot."""
        return (self._get(0), self._get(8), self._get(16), self._get(24))

    # -- producer side -----------------------------------------------

    def try_write(self, depth: int, payload) -> bool:
        """Append one record; False when it does not fit right now.

        ``payload`` is any bytes-like object. Records never straddle
        the wrap point: when the tail of the data area is too short the
        writer pads it (a :data:`_PAD_MARK` length when >= 4 bytes
        remain, dead bytes otherwise) and the pad cost counts against
        the free space. A payload that cannot fit even in an empty ring
        is rejected outright — the caller falls back to the control
        plane (a coordinator relay).
        """
        need = _REC_OVERHEAD + len(payload)
        if need > self.capacity:
            return False
        wr = self._get(0)
        rd = self._get(8)
        cap = self.capacity
        pos = wr % cap
        tail = cap - pos
        pad = 0 if tail >= need else tail
        if pad + need > cap - (wr - rd):
            return False
        if pad:
            if tail >= 4:
                _U32.pack_into(self._buf, HEADER_BYTES + pos, _PAD_MARK)
            wr += pad
            pos = 0
        base = HEADER_BYTES + pos
        _REC.pack_into(self._buf, base, len(payload), depth)
        self._buf[base + _REC_OVERHEAD: base + need] = payload
        # record count first, byte count last: the consumer gates on
        # wr_bytes, so a visible byte count implies a complete record
        self._set(16, self._get(16) + 1)
        self._set(0, wr + need)
        return True

    # -- consumer side -----------------------------------------------

    def peek(self, cursor: int):
        """The record at/after ``cursor``, or ``None``.

        ``cursor`` is a cumulative byte position (start at
        ``rd_bytes``). Returns ``(depth, payload: bytes, next_cursor)``
        without consuming anything — the consumer may peek many records
        ahead of ``rd_bytes`` and only :meth:`commit` them after the
        acknowledgement covering them is on its way (the crash-recovery
        ordering; see module docstring).
        """
        wr = self._get(0)
        cap = self.capacity
        buf = self._buf
        while cursor < wr:
            pos = cursor % cap
            tail = cap - pos
            if tail < _REC_OVERHEAD:
                cursor += tail  # short tail: implicit pad
                continue
            base = HEADER_BYTES + pos
            length = _U32.unpack_from(buf, base)[0]
            if length == _PAD_MARK:
                cursor += tail  # explicit pad marker
                continue
            depth = _U32.unpack_from(buf, base + 4)[0]
            start = base + _REC_OVERHEAD
            return depth, bytes(buf[start: start + length]), \
                cursor + _REC_OVERHEAD + length
        return None

    def commit(self, n_bytes: int, n_recs: int) -> None:
        """Advance the consumer counters (post-acknowledgement only).

        ``n_bytes`` must be a sum of cursor deltas returned by
        :meth:`peek` (pads included), ``n_recs`` the number of records
        they covered.
        """
        self._set(8, self._get(8) + n_bytes)
        self._set(24, self._get(24) + n_recs)

    def drain_unconsumed(self) -> list[tuple[int, bytes]]:
        """All unconsumed records, marking them consumed (crash path).

        Only valid when the producer is known to have stopped (it is
        dead, or the consumer is dead and the producer was told so) —
        there is no synchronisation against concurrent writes here.
        """
        out: list[tuple[int, bytes]] = []
        cursor = self._get(8)
        while True:
            rec = self.peek(cursor)
            if rec is None:
                break
            depth, payload, cursor = rec
            out.append((depth, payload))
        self._set(8, self._get(0))
        self._set(24, self._get(16))
        return out

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (workers and coordinator)."""
        self._buf = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover
            pass

    def unlink(self) -> None:
        """Free the backing segment (creator only, after close)."""
        if self._owned:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def pack_keys(keys, width: int) -> bytes:
    """Flatten integer codec keys into little-endian ``width``-byte slots."""
    return b"".join(k.to_bytes(width, "little") for k in keys)


def unpack_keys(payload, width: int) -> list[int]:
    """Inverse of :func:`pack_keys`."""
    ifb = int.from_bytes
    return [
        ifb(payload[i: i + width], "little")
        for i in range(0, len(payload), width)
    ]


class AdaptiveBatch:
    """Wall-clock-targeted quantum sizing for transport batches.

    Worker-local and purely arithmetic: after each expansion quantum the
    worker reports how many input keys it processed and how long the
    expansion took; the controller keeps an exponential moving average
    of the implied rate (keys/second) and sizes the next quantum as
    ``rate * target_s``, clamped to ``[lo, hi]``. Under constant
    per-key cost the EMA converges geometrically to the true rate, so
    the quantum size converges to (the clamp of) ``rate * target_s``;
    degenerate observations (zero keys, non-positive seconds from a
    coarse clock, or an interval so small the implied rate overflows)
    leave the estimate untouched.
    """

    __slots__ = ("size", "lo", "hi", "target_s", "alpha", "_rate")

    def __init__(self, initial: int = 256, lo: int = 32, hi: int = 8192,
                 target_s: float = 0.004, alpha: float = 0.3):
        if not (1 <= lo <= hi):
            raise ValueError("need 1 <= lo <= hi")
        if target_s <= 0:
            raise ValueError("target_s must be positive")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.size = max(lo, min(hi, initial))
        self.lo = lo
        self.hi = hi
        self.target_s = target_s
        self.alpha = alpha
        self._rate: float | None = None

    def update(self, n_keys: int, seconds: float) -> int:
        """Fold one observation in; returns the new quantum size."""
        if n_keys <= 0 or seconds <= 0.0:
            return self.size
        rate = n_keys / seconds
        if rate == float("inf"):  # denormal-small seconds: no signal
            return self.size
        if self._rate is None:
            self._rate = rate
        else:
            self._rate = self.alpha * rate + (1.0 - self.alpha) * self._rate
        self.size = max(self.lo, min(self.hi, int(self._rate * self.target_s)))
        return self.size
