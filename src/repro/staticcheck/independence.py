"""Static independence analysis over summand read/write footprints.

Every transition label of :class:`~repro.jackal.model.JackalModel`
belongs to a *class* (the rule that emits it) whose read and write
footprint over the packed state fields is known statically — the
:class:`~repro.jackal.codec.StateCodec` field layout is the ground
truth for what a "field" is. Two transitions *may commute* when
neither writes an atom the other reads or writes; that relation is
what the ample-set pruner in :mod:`repro.lts.certreduce` consults.

Atoms are per-index field slots: ``thr[t]``, ``copy[p]`` (one
processor's whole copy row — regions are few and rules touch one row
at a time), ``hq[p]``, ``hqa[p]``, ``rq[p]``, ``rqa[p]``, ``lock[p]``,
``mig[p]``, plus one *predicate atom*:

``migpend[p]``
    "a migration is pending at ``p``" — the disjunction the home-queue
    take guards on (a mig-flagged Data Return in ``rq[p]``/``rqa[p]``
    or a loaded migration slot). It is its own atom so that
    ``lock_remotequeue(p)``, which moves a message from ``rq[p]`` to
    ``rqa[p]`` *preserving the predicate*, is independent of the
    home-queue take that reads it. Only rules that can flip the
    predicate write it.

Unknown labels and assertion violations get the conservative ``TOP``
footprint (conflicts with everything), so new rules fail safe: they
are never pruned against until given an explicit footprint here.

Safe classes (candidates for singleton ample sets) are the two queue
takes. ``lock_remotequeue(p)`` is *persistent*: nothing can disable
``rqa[p] == 0 ∧ rq[p] ≠ 0`` (a Data Return only enters an *empty*
``rq``, and only ``signal`` — which requires ``rqa ≠ 0`` — consumes
one). ``lock_homequeue(p)`` additionally guards on ``¬migpend[p]``,
which a remote ``send_dataret_mig`` can flip, so its soundness as an
ample candidate is gated empirically: the test suite checks verdict
equality between reduced and unreduced sweeps on fixed *and* error
variants, and the class must be dropped here if any verdict drifts.
"""

from __future__ import annotations

import re

from repro.jackal.params import Config

#: the conflicts-with-everything atom (assertions, unknown labels)
STAR = ("*", 0)
TOP = frozenset((STAR,))

#: classes eligible as singleton ample sets, in priority order
SAFE_CLASSES = ("lock_remotequeue", "lock_homequeue")

#: classes whose labels requirement formulas observe — never pruned
VISIBLE_CLASSES = frozenset(
    (
        "write",
        "writeover",
        "flush",
        "flushover",
        "assertion_violation",
        "c_home",
        "c_copy",
        "lock_empty",
        "homequeue_empty",
        "remotequeue_empty",
    )
)

_LABEL = re.compile(r"^([a-z0-9_]+)(?:\((.*)\))?$")

#: a field slot — ``("thr", 1)``; the index is ``None`` for the rare
#: thread-indexed atoms of a label that carries no thread argument
Atom = tuple[str, "int | None"]

#: ``(reads, writes)`` atom sets of one transition label
Footprint = tuple[frozenset[Atom], frozenset[Atom]]


def parse_label(label: str) -> tuple[str, list[int], list[int]]:
    """``(class, thread_args, processor_args)`` of a model label.

    ``signal(t1,p0)`` → ``("signal", [1], [0])``. Non-index arguments
    (assertion names) yield no indices; the class still resolves.
    """
    m = _LABEL.match(label)
    if m is None:
        return label, [], []
    name, args = m.group(1), m.group(2)
    ts: list[int] = []
    ps: list[int] = []
    for arg in (args or "").split(","):
        arg = arg.strip()
        if re.fullmatch(r"t\d+", arg):
            ts.append(int(arg[1:]))
        elif re.fullmatch(r"p\d+", arg):
            ps.append(int(arg[1:]))
    return name, ts, ps


def label_footprint(label: str, config: Config) -> Footprint:
    """``(reads, writes)`` atom sets of one concrete label.

    Conservative by construction: a superset footprint is always
    sound (it can only suppress pruning), so rules with variant- or
    phase-dependent behaviour carry the union of their paths.
    """
    name, ts, ps = parse_label(label)
    t = ts[0] if ts else None
    tp = config.processor_of(t) if t is not None else None

    def thr(i: int | None) -> Atom:
        return ("thr", i)

    def copy(i: int | None) -> Atom:
        return ("copy", i)

    if name in ("write", "flush"):
        # thread starts a write/flush: phase change + lock enqueue
        return (
            frozenset((thr(t), copy(tp), ("lock", tp))),
            frozenset((thr(t), ("lock", tp))),
        )
    if name in ("writeover", "flushover"):
        fp = frozenset((thr(t), copy(tp), ("lock", tp)))
        return fp, fp
    if name in ("restart_write", "fault_to_server"):
        return (
            frozenset((thr(t), copy(tp), ("lock", tp))),
            frozenset((thr(t), ("lock", tp))),
        )
    if name == "stale_remote_wait":
        return frozenset((thr(t), copy(tp))), frozenset((thr(t),))
    if name in ("lock_server", "lock_fault"):
        p = ps[0]
        return (
            frozenset((thr(t), ("lock", p))),
            frozenset((thr(t), ("lock", p))),
        )
    if name == "lock_flush":
        p = ps[0]
        return (
            frozenset(
                (
                    thr(t),
                    ("lock", p),
                    ("hq", p),
                    ("rq", p),
                    ("hqa", p),
                    ("rqa", p),
                    ("mig", p),
                )
            ),
            frozenset((thr(t), ("lock", p))),
        )
    if name == "send_datareq":
        s, d = ps
        return (
            frozenset((thr(t), copy(s), ("hq", d))),
            frozenset((thr(t), ("hq", d))),
        )
    if name == "send_flush":
        s, d = ps
        return (
            frozenset((thr(t), copy(s), ("hq", d))),
            frozenset((thr(t), copy(s), ("hq", d))),
        )
    if name == "flush_home":
        p = ps[0]
        fp = frozenset((thr(t), copy(p)))
        return fp, fp
    if name == "flush_home_migrate":
        p, d = ps
        return (
            frozenset((thr(t), copy(p), ("mig", d))),
            frozenset((thr(t), copy(p), ("mig", d), ("migpend", d))),
        )
    if name == "lock_homequeue":
        p = ps[0]
        return (
            frozenset((("hq", p), ("hqa", p), ("migpend", p))),
            frozenset((("hq", p), ("hqa", p))),
        )
    if name == "lock_remotequeue":
        p = ps[0]
        fp = frozenset((("rq", p), ("rqa", p)))
        return fp, fp
    if name in ("forward_req", "forward_flush"):
        p, d = ps
        return (
            frozenset((("hqa", p), copy(p), ("hq", d))),
            frozenset((("hqa", p), ("hq", d))),
        )
    if name == "send_dataret":
        p, d = ps
        return (
            frozenset((("hqa", p), copy(p), ("rq", d))),
            frozenset((("hqa", p), copy(p), ("rq", d))),
        )
    if name == "send_dataret_mig":
        p, d = ps
        return (
            frozenset((("hqa", p), copy(p), ("rq", d))),
            frozenset((("hqa", p), copy(p), ("rq", d), ("migpend", d))),
        )
    if name == "flush_recv":
        p = ps[0]
        fp = frozenset((("hqa", p), copy(p)))
        return fp, fp
    if name == "flush_recv_migrate":
        p, d = ps
        return (
            frozenset((("hqa", p), copy(p), ("mig", d))),
            frozenset((("hqa", p), copy(p), ("mig", d), ("migpend", d))),
        )
    if name == "recv_sponmigrate":
        p = ps[0]
        local = tuple(thr(i) for i in config.thread_ids_of(p))
        fp = frozenset((("mig", p), copy(p), ("migpend", p)) + local)
        return fp, fp
    if name == "signal":
        p = ps[0]
        return (
            frozenset((thr(t), copy(p), ("rqa", p))),
            frozenset((thr(t), copy(p), ("rqa", p), ("migpend", p))),
        )
    if name in ("c_home", "c_copy"):
        reads = frozenset(copy(p) for p in range(config.n_processors))
        return reads, frozenset()
    if name == "lock_empty":
        reads = frozenset(
            (kind, p)
            for p in range(config.n_processors)
            for kind in ("lock", "hqa", "rqa")
        )
        return reads, frozenset()
    if name == "homequeue_empty":
        reads = frozenset(
            (kind, p)
            for p in range(config.n_processors)
            for kind in ("hq", "mig")
        )
        return reads, frozenset()
    if name == "remotequeue_empty":
        return (
            frozenset(("rq", p) for p in range(config.n_processors)),
            frozenset(),
        )
    # assertion_violation(...) and anything unrecognised
    return TOP, TOP


def may_commute(fp_a: Footprint, fp_b: Footprint) -> bool:
    """Whether two footprints prove their transitions independent:
    neither writes an atom the other reads or writes."""
    reads_a, writes_a = fp_a
    reads_b, writes_b = fp_b
    if STAR in writes_a or STAR in writes_b:
        return False
    return not (
        writes_a & (reads_b | writes_b) or writes_b & reads_a
    )


def is_safe(label: str) -> bool:
    """Eligible as a singleton ample set (invisible by construction)."""
    return parse_label(label)[0] in SAFE_CLASSES


def is_visible(label: str) -> bool:
    return parse_label(label)[0] in VISIBLE_CLASSES


def _atom_str(atom: Atom) -> str:
    kind, idx = atom
    return "*" if kind == "*" else f"{kind}[{idx}]"


def ample_table(config: Config) -> dict:
    """The per-label footprint table stored in a certificate.

    Deterministic for a given configuration, so certificate validation
    re-derives it and rejects any drift between an old certificate and
    the current analysis (JKL305). Keys are the concrete labels of the
    probe-enabled model's vocabulary.
    """
    from dataclasses import replace

    from repro.jackal.model import JackalModel
    from repro.jackal.params import ProtocolVariant
    from repro.staticcheck.labelcheck import model_labels

    # the vocabulary union over both Error-1 spellings, so one table
    # serves every variant of the topology
    labels: set[str] = set()
    for variant in (ProtocolVariant.fixed(), ProtocolVariant.error1()):
        labels |= model_labels(
            JackalModel(replace(config, with_probes=True), variant)
        )
    table: dict[str, dict[str, object]] = {}
    for label in sorted(labels):
        reads, writes = label_footprint(label, config)
        table[label] = {
            "reads": sorted(map(_atom_str, reads)),
            "writes": sorted(map(_atom_str, writes)),
            "safe": is_safe(label),
            "visible": is_visible(label),
        }
    return {
        "atoms": [
            "thr[t]",
            "copy[p]",
            "hq[p]",
            "hqa[p]",
            "rq[p]",
            "rqa[p]",
            "lock[p]",
            "mig[p]",
            "migpend[p]",
        ],
        "safe_classes": list(SAFE_CLASSES),
        "visible_classes": sorted(VISIBLE_CLASSES),
        "labels": table,
    }
