"""Findings, severities and reports of the static protocol analyzer.

Every lint rule has a stable identifier (``JKL001``, ...) so findings
can be suppressed individually and CI gates stay meaningful as rules
are added. The numbering is grouped by analysis:

* ``JKL0xx`` — lockset dataflow over the protocol phase graph;
* ``JKL1xx`` — process-algebra specification lints;
* ``JKL2xx`` — label cross-checks between the model and formulas.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable


class Severity(IntEnum):
    """How seriously a finding gates CI.

    Only :data:`Severity.ERROR` findings make ``repro lint`` exit
    nonzero; warnings and notes are informational.
    """

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: rule id -> one-line description (the catalogue rendered by ``--rules``
#: and documented in docs/static-analysis.md)
RULES: dict[str, str] = {
    "JKL001": "a rule acquires a lock slot its thread already holds",
    "JKL002": "a rule releases a lock slot that may be free",
    "JKL003": "a thread can return to IDLE still holding a lock slot",
    "JKL004": "a rule waits for a lock while holding one that blocks its grant",
    "JKL005": "home-side operation reachable under the fault lock "
    "(the static signature of the paper's Error 1)",
    "JKL006": "a thread phase is unreachable from IDLE in the phase graph",
    "JKL101": "a guard is statically unsatisfiable (or makes a branch dead)",
    "JKL102": "a dead summand: delta branch or term unreachable after delta",
    "JKL103": "a sum variable is never used by its body",
    "JKL104": "a communication pair references an action no process performs",
    "JKL105": "an encapsulation/hiding set names an action never performed",
    "JKL201": "a formula references a label the model can never emit",
    "JKL202": "a label prefix in a formula matches nothing the model emits",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by the analyzer.

    Attributes
    ----------
    rule:
        Stable rule id (key of :data:`RULES`).
    severity:
        Gate level; see :class:`Severity`.
    location:
        Where the problem lives — a phase-graph edge, a process
        definition, or a formula, rendered as text (the analyzer works
        on in-memory objects, not files).
    message:
        Human-readable description of this concrete instance.
    """

    rule: str
    severity: Severity
    location: str
    message: str

    def render(self) -> str:
        """``JKL005 error  <location>: <message>``."""
        return f"{self.rule} {self.severity!s:<7} {self.location}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }


@dataclass
class LintReport:
    """All findings of one ``repro lint`` run."""

    findings: list[Finding] = field(default_factory=list)
    #: rule ids dropped before reporting (from ``--suppress``)
    suppressed: tuple[str, ...] = ()

    def extend(self, more: Iterable[Finding]) -> None:
        self.findings.extend(
            f for f in more if f.rule not in self.suppressed
        )

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """0 when clean at error severity, 1 otherwise (the CI gate)."""
        return 1 if self.errors() else 0

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (-int(f.severity), f.rule, f.location)
        )]
        n_err, n_warn = len(self.errors()), len(self.warnings())
        lines.append(
            f"{len(self.findings)} finding(s): {n_err} error(s), "
            f"{n_warn} warning(s)"
        )
        if self.suppressed:
            lines.append(f"suppressed rules: {', '.join(self.suppressed)}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "suppressed": list(self.suppressed),
            "exit_code": self.exit_code,
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)
