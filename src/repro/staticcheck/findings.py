"""Findings, severities and reports of the static protocol analyzer.

Every lint rule has a stable identifier (``JKL001``, ...) so findings
can be suppressed individually and CI gates stay meaningful as rules
are added. The numbering is grouped by analysis:

* ``JKL0xx`` — lockset dataflow over the protocol phase graph;
* ``JKL1xx`` — process-algebra specification lints;
* ``JKL2xx`` — label cross-checks between the model and formulas;
* ``JKL3xx`` — reduction certification (symmetry/independence);
* ``JKL4xx`` — formula-directed reduction (symmetrization/slicing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable

#: version of the JSON report layout (``repro lint --json``). Bump on
#: any structural change so CI artifact consumers can gate on it.
#: 2: added ``schema_version``/``fingerprint``, deterministic finding
#: order (rule, then location).
#: 3: findings carry an optional machine-readable ``data`` object
#: (expected-vs-found values, permutation maps, digests).
LINT_SCHEMA_VERSION = 3


class Severity(IntEnum):
    """How seriously a finding gates CI.

    Only :data:`Severity.ERROR` findings make ``repro lint`` exit
    nonzero; warnings and notes are informational.
    """

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: rule id -> one-line description (the catalogue rendered by ``--rules``
#: and documented in docs/static-analysis.md)
RULES: dict[str, str] = {
    "JKL001": "a rule acquires a lock slot its thread already holds",
    "JKL002": "a rule releases a lock slot that may be free",
    "JKL003": "a thread can return to IDLE still holding a lock slot",
    "JKL004": "a rule waits for a lock while holding one that blocks its grant",
    "JKL005": "home-side operation reachable under the fault lock "
    "(the static signature of the paper's Error 1)",
    "JKL006": "a thread phase is unreachable from IDLE in the phase graph",
    "JKL101": "a guard is statically unsatisfiable (or makes a branch dead)",
    "JKL102": "a dead summand: delta branch or term unreachable after delta",
    "JKL103": "a sum variable is never used by its body",
    "JKL104": "a communication pair references an action no process performs",
    "JKL105": "an encapsulation/hiding set names an action never performed",
    "JKL106": "a communication pair is never forced: no action of the pair "
    "appears in any encapsulation set",
    "JKL201": "a formula references a label the model can never emit",
    "JKL202": "a label prefix in a formula matches nothing the model emits",
    "JKL301": "the model/spec is not index-generic: no nontrivial "
    "processor/thread permutation applies, or a guard special-cases an index",
    "JKL302": "the bounded equivariance self-test found a state where "
    "permuting and stepping do not commute",
    "JKL303": "a reduction certificate's fingerprint does not match the "
    "current specification (stale certificate)",
    "JKL304": "a reduction certificate's signature is invalid "
    "(tampered or corrupt)",
    "JKL305": "a reduction certificate is malformed or its schema/group "
    "is unsupported for this configuration",
    "JKL401": "a requirement formula is asymmetric under the certified "
    "permutation group (no symmetrized orbit conjunction exists)",
    "JKL402": "permuting a formula literal leaves the model's label "
    "vocabulary (the symmetrized property would be vacuous)",
    "JKL403": "a field slice is inconsistent: a guard observes a dropped "
    "field, a dropped field flows into a kept one, or the congruence "
    "self-test found a counterexample",
    "JKL404": "a certificate's formulas/slices section is stale: "
    "re-deriving the analysis disagrees with what was signed",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by the analyzer.

    Attributes
    ----------
    rule:
        Stable rule id (key of :data:`RULES`).
    severity:
        Gate level; see :class:`Severity`.
    location:
        Where the problem lives — a phase-graph edge, a process
        definition, or a formula, rendered as text (the analyzer works
        on in-memory objects, not files).
    message:
        Human-readable description of this concrete instance.
    data:
        Optional machine-readable payload (expected-vs-found values,
        digests, permutation maps) for CI consumers of the JSON
        report; ``None`` keeps the finding hashable-by-identity
        semantics unchanged for rules that carry none.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    data: dict | None = None

    def render(self) -> str:
        """``JKL005 error  <location>: <message>``."""
        return f"{self.rule} {self.severity!s:<7} {self.location}: {self.message}"

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }
        if self.data is not None:
            out["data"] = self.data
        return out


@dataclass
class LintReport:
    """All findings of one ``repro lint`` run."""

    findings: list[Finding] = field(default_factory=list)
    #: rule ids dropped before reporting (from ``--suppress``)
    suppressed: tuple[str, ...] = ()
    #: fingerprint of the specification the findings are about (see
    #: :func:`repro.staticcheck.certificates.spec_fingerprint`); the key
    #: reduction certificates are issued under
    fingerprint: str | None = None

    def extend(self, more: Iterable[Finding]) -> None:
        self.findings.extend(
            f for f in more if f.rule not in self.suppressed
        )

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """0 when clean at error severity, 1 otherwise (the CI gate)."""
        return 1 if self.errors() else 0

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (-int(f.severity), f.rule, f.location)
        )]
        n_err, n_warn = len(self.errors()), len(self.warnings())
        lines.append(
            f"{len(self.findings)} finding(s): {n_err} error(s), "
            f"{n_warn} warning(s)"
        )
        if self.suppressed:
            lines.append(f"suppressed rules: {', '.join(self.suppressed)}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        # deterministic finding order (rule, then location) so CI
        # artifact diffs are stable across runs and pass ordering
        ordered = sorted(
            self.findings, key=lambda f: (f.rule, f.location, f.message)
        )
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "findings": [f.as_dict() for f in ordered],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "suppressed": list(self.suppressed),
            "exit_code": self.exit_code,
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)
