"""The ``repro lint`` driver: run every static analysis, one report.

Three exploration-free passes over the protocol artefacts:

1. lockset dataflow over the phase graph of the selected
   :class:`~repro.jackal.params.ProtocolVariant` (JKL0xx);
2. specification lints over the shipped muCRL-style systems (JKL1xx);
3. label cross-check between the model's vocabulary and the
   requirement formulas (JKL2xx).

None of them builds an LTS — the analyzer only constructs the model
object (for its precomputed label tables) and walks syntax, so a full
run finishes in well under a second where exploration takes minutes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

from repro.jackal.model import JackalModel
from repro.jackal.mucrl_spec import (
    locker_system,
    region_system,
    thread_write_remote_spec,
)
from repro.jackal.params import Config, ProtocolVariant
from repro.jackal.requirements import (
    formula_3_1,
    formula_3_2_bad_state,
    formula_4_flush,
    formula_4_write,
)
from repro.mucalc.syntax import Formula
from repro.staticcheck.findings import LintReport
from repro.staticcheck.labelcheck import lint_labels
from repro.staticcheck.lockset import lint_locksets
from repro.staticcheck.phasegraph import phase_graph
from repro.staticcheck.speclint import lint_spec, lint_system


def default_formulas(config: Config) -> list[tuple[str, Formula]]:
    """The requirement formulas a ``check`` run would evaluate on
    ``config``, with the names used in finding locations."""
    out: list[tuple[str, Formula]] = [("formula_3_1", formula_3_1())]
    if config.n_processors == 2:
        out.append(("formula_3_2_bad_state", formula_3_2_bad_state()))
    for tid in range(config.n_threads):
        out.append((f"formula_4_write(t{tid})", formula_4_write(tid)))
        out.append((f"formula_4_flush(t{tid})", formula_4_flush(tid)))
    return out


def run_lint(
    config: Config,
    variant: ProtocolVariant,
    *,
    formulas: Iterable[tuple[str, Formula]] | None = None,
    suppress: Sequence[str] = (),
) -> LintReport:
    """Run all static analyses and collect one :class:`LintReport`.

    ``formulas`` defaults to the requirement formulas of ``config``
    (pass extra ``(name, formula)`` pairs to vet your own properties).
    The label cross-check always runs against the probe-enabled model,
    mirroring how Requirement 3 builds its LTS.
    """
    report = LintReport(suppressed=tuple(suppress))

    # 1. lockset dataflow over the phase graph
    report.extend(lint_locksets(phase_graph(variant)))

    # 2. the shipped algebraic specifications
    report.extend(lint_system(region_system(), "region_system"))
    report.extend(lint_system(locker_system(), "locker_system"))
    report.extend(
        lint_spec(thread_write_remote_spec(), "thread_write_remote")
    )

    # 3. label cross-check (probe labels are part of the vocabulary,
    #    as in the Requirement-3 LTS builds)
    model = JackalModel(replace(config, with_probes=True), variant)
    named = default_formulas(config) if formulas is None else list(formulas)
    report.extend(lint_labels(model, named))

    # the key any reduction certificate for this spec is issued under;
    # computed on every run so consumers can match report to CERT.json
    from repro.staticcheck.certificates import spec_fingerprint

    report.fingerprint = spec_fingerprint(config, variant)

    return report
