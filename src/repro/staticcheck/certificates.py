"""Signed reduction certificates and the spec fingerprint keying them.

A :class:`ReductionCertificate` is the machine-checkable contract
between the static pass (:mod:`repro.staticcheck.symmetry`,
:mod:`repro.staticcheck.independence`) and the exploration backends:
*this* specification, at *this* fingerprint, is invariant under *these*
permutations, and *these* summand footprints justify ample pruning.
Backends refuse to reduce without a certificate that validates — the
failure modes are the JKL303–JKL305 rules:

* **JKL303** — fingerprint mismatch: the certificate was issued for a
  different (or since-edited) specification;
* **JKL304** — signature mismatch: the payload was edited after
  issuance (the signature is keyed-hash tamper *evidence*, not a
  cryptographic trust root — anyone with this source can re-sign);
* **JKL305** — malformed: wrong schema version, an inadmissible
  permutation for the configuration, or an independence table that
  does not match what the current analysis derives;
* **JKL404** — a schema-v3 section drifted: the ``formulas``
  (symmetrization, :mod:`repro.staticcheck.formulasym`) or ``slices``
  (cone-of-influence, :mod:`repro.staticcheck.slicing`) section no
  longer matches what re-deriving the analysis produces.

Schema v3 extends the certificate with those two formula-directed
sections: ``formulas`` records per-requirement orbit structure and
whether the plain LTS may take the full symmetry quotient;
``slices`` records the per-requirement field slices and the common
dropped set the backends project by. v1/v2 certificates are refused
outright (JKL305) — the backends must never reduce on a certificate
that predates the formula-side obligations.

The fingerprint covers the configuration, the variant flags, the
model's label vocabulary, the packed-state width, and a digest of the
model/spec/codec/requirements sources: any change that could alter the
transition relation *or the certified formulas* re-keys the
certificate and stales every old one (JKL303).

Every refusal finding carries a machine-readable ``data`` payload
(expected-vs-found values, digests, the spec fingerprint) so the lint
JSON report is actionable without parsing messages.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.errors import ReproError
from repro.jackal.params import Config, ProtocolVariant
from repro.staticcheck.findings import Finding, Severity

#: version of the certificate JSON layout; validation rejects others.
#: 3: ``formulas`` (symmetrization) and ``slices`` (cone-of-influence)
#: sections, requirements sources in the fingerprint.
CERT_SCHEMA_VERSION = 3

_SIGNING_TAG = b"repro-reduction-certificate-v3:"


def _config_dict(config: Config) -> dict:
    return {
        "threads_per_processor": list(config.threads_per_processor),
        "n_regions": config.n_regions,
        "initial_home": config.initial_home,
        "rounds": config.rounds,
        "writes_per_round": config.writes_per_round,
    }


def _variant_dict(variant: ProtocolVariant) -> dict:
    return asdict(variant)


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def section_digest(section: dict) -> str:
    """Short sha256 of a certificate section's canonical JSON — the
    expected-vs-found value refusal findings carry (whole tables are
    too large for a diagnostic payload)."""
    return hashlib.sha256(_canonical(section)).hexdigest()[:16]


def spec_fingerprint(config: Config, variant: ProtocolVariant) -> str:
    """The sha256 key a certificate for this spec is issued under.

    Computed by ``repro lint`` on every run (it is part of the JSON
    report) and by every consumer before reducing.
    """
    from repro.jackal import codec as codec_mod
    from repro.jackal import model as model_mod
    from repro.jackal import mucrl_spec as spec_mod
    from repro.jackal import requirements as req_mod
    from repro.jackal.model import JackalModel
    from repro.staticcheck.labelcheck import model_labels

    model = JackalModel(replace(config, with_probes=True), variant)
    sources = hashlib.sha256()
    # requirements are fingerprinted too: v3 certificates certify the
    # formulas themselves (symmetrization licenses the full quotient),
    # so editing a requirement must stale every certificate
    for mod in (model_mod, codec_mod, spec_mod, req_mod):
        sources.update(inspect.getsource(mod).encode())
    payload = {
        "config": _config_dict(config),
        "variant": _variant_dict(variant),
        "labels": sorted(model_labels(model)),
        "state_bits": model.codec().n_bits,
        "sources": sources.hexdigest(),
    }
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass
class ReductionCertificate:
    """One certified reduction: symmetry group + independence table."""

    fingerprint: str
    config: dict
    variant: dict
    #: non-identity admissible permutations, ``{"pid_map", "tid_map"}``
    group: list = field(default_factory=list)
    #: per-label footprint table (see ``independence.ample_table``)
    independence: dict = field(default_factory=dict)
    #: formula symmetrization section (``formulasym.formulas_section``)
    formulas: dict = field(default_factory=dict)
    #: cone-of-influence slice section (``slicing.slices_section``)
    slices: dict = field(default_factory=dict)
    #: how hard the equivariance self-test looked before signing
    selftest: dict = field(default_factory=dict)
    schema_version: int = CERT_SCHEMA_VERSION
    signature: str = ""

    # -- signing ---------------------------------------------------------

    def _payload(self) -> dict:
        out = asdict(self)
        out.pop("signature")
        return out

    def _digest(self) -> str:
        return hashlib.sha256(
            _SIGNING_TAG + _canonical(self._payload())
        ).hexdigest()

    def sign(self) -> "ReductionCertificate":
        self.signature = self._digest()
        return self

    def signature_valid(self) -> bool:
        return bool(self.signature) and self.signature == self._digest()

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ReductionCertificate":
        if not isinstance(data, dict):
            raise ReproError("certificate is not a JSON object")
        try:
            return cls(
                fingerprint=data["fingerprint"],
                config=data["config"],
                variant=data["variant"],
                group=data["group"],
                independence=data["independence"],
                # absent on pre-v3 certificates: let the schema gate
                # (JKL305) and section re-derivation (JKL404) refuse
                # with findings instead of failing the parse
                formulas=data.get("formulas", {}),
                slices=data.get("slices", {}),
                selftest=data.get("selftest", {}),
                schema_version=data["schema_version"],
                signature=data.get("signature", ""),
            )
        except KeyError as missing:
            raise ReproError(
                f"certificate is missing required field {missing}"
            ) from None

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")


def load(path: str) -> ReductionCertificate:
    """Read a certificate file (malformation raises ``ReproError``)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read certificate {path}: {exc}") from exc
    return ReductionCertificate.from_dict(data)


def issue(
    config: Config,
    variant: ProtocolVariant,
    *,
    group: Iterable[Any],
    independence: dict,
    formulas: dict,
    slices: dict,
    selftest: dict,
) -> ReductionCertificate:
    """Build and sign a certificate (the certifier's final step)."""
    return ReductionCertificate(
        fingerprint=spec_fingerprint(config, variant),
        config=_config_dict(config),
        variant=_variant_dict(variant),
        group=[perm.as_dict() for perm in group],
        independence=independence,
        formulas=formulas,
        slices=slices,
        selftest=selftest,
    ).sign()


def validate(
    cert: ReductionCertificate,
    config: Config,
    variant: ProtocolVariant,
) -> list[Finding]:
    """Every reason ``cert`` must not be trusted for this spec.

    Empty list = valid. Consumers call this before reducing anything
    and refuse (:class:`~repro.errors.ReproError`) on any finding.
    """
    # runtime imports: symmetry/independence import this module
    from repro.staticcheck.formulasym import formulas_section
    from repro.staticcheck.independence import ample_table
    from repro.staticcheck.slicing import slices_section
    from repro.staticcheck.symmetry import is_admissible

    findings: list[Finding] = []
    if cert.schema_version != CERT_SCHEMA_VERSION:
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/schema",
                f"unsupported certificate schema "
                f"{cert.schema_version!r} (this build reads "
                f"{CERT_SCHEMA_VERSION})",
                data={
                    "fingerprint": cert.fingerprint,
                    "expected": CERT_SCHEMA_VERSION,
                    "found": cert.schema_version,
                },
            )
        )
        return findings
    if not cert.signature_valid():
        findings.append(
            Finding(
                "JKL304",
                Severity.ERROR,
                "certificate/signature",
                "signature does not match the payload: the certificate "
                "was tampered with or corrupted after issuance",
                data={
                    "fingerprint": cert.fingerprint,
                    "expected": cert._digest(),
                    "found": cert.signature,
                },
            )
        )
        return findings
    expected = spec_fingerprint(config, variant)
    if cert.fingerprint != expected:
        findings.append(
            Finding(
                "JKL303",
                Severity.ERROR,
                "certificate/fingerprint",
                f"certificate is keyed to {cert.fingerprint[:12]}… but "
                f"the current spec fingerprints to {expected[:12]}…: "
                "stale certificate, re-run `repro lint --certify`",
                data={"expected": expected, "found": cert.fingerprint},
            )
        )
        return findings
    if not cert.group:
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/group",
                "certificate carries an empty permutation group: there "
                "is nothing to reduce by",
                data={
                    "fingerprint": cert.fingerprint,
                    "expected": ">= 1 admissible permutation",
                    "found": 0,
                },
            )
        )
    for entry in cert.group:
        pid_map = entry.get("pid_map") if isinstance(entry, dict) else None
        tid_map = entry.get("tid_map") if isinstance(entry, dict) else None
        if (
            pid_map is None
            or tid_map is None
            or not is_admissible(config, pid_map, tid_map)
        ):
            findings.append(
                Finding(
                    "JKL305",
                    Severity.ERROR,
                    "certificate/group",
                    f"group entry {entry!r} is not an admissible "
                    "processor/thread permutation for "
                    f"{config.describe()}",
                    data={
                        "fingerprint": cert.fingerprint,
                        "permutation": entry if isinstance(entry, dict)
                        else repr(entry),
                    },
                )
            )
            break
    derived_independence = ample_table(config)
    if cert.independence != derived_independence:
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/independence",
                "independence table does not match what the current "
                "analysis derives for this configuration: re-run "
                "`repro lint --certify`",
                data={
                    "fingerprint": cert.fingerprint,
                    "expected": section_digest(derived_independence),
                    "found": section_digest(cert.independence),
                },
            )
        )
    # v3 sections: re-derive both formula-directed analyses and demand
    # byte-for-byte agreement with what was signed (JKL404). Any
    # refusal of the re-derivation itself (JKL401/403) also lands here.
    derived_formulas, formula_findings = formulas_section(config)
    findings.extend(formula_findings)
    derived_slices, slice_findings = slices_section(config)
    findings.extend(slice_findings)
    for name, stored, derived in (
        ("formulas", cert.formulas, derived_formulas),
        ("slices", cert.slices, derived_slices),
    ):
        if derived is not None and stored != derived:
            findings.append(
                Finding(
                    "JKL404",
                    Severity.ERROR,
                    f"certificate/{name}",
                    f"{name} section does not match what the current "
                    "analysis derives: the certified formula-directed "
                    "reduction is stale, re-run `repro lint --certify`",
                    data={
                        "fingerprint": cert.fingerprint,
                        "section": name,
                        "expected": section_digest(derived),
                        "found": section_digest(stored),
                    },
                )
            )
    return findings
