"""Signed reduction certificates and the spec fingerprint keying them.

A :class:`ReductionCertificate` is the machine-checkable contract
between the static pass (:mod:`repro.staticcheck.symmetry`,
:mod:`repro.staticcheck.independence`) and the exploration backends:
*this* specification, at *this* fingerprint, is invariant under *these*
permutations, and *these* summand footprints justify ample pruning.
Backends refuse to reduce without a certificate that validates — the
failure modes are the JKL303–JKL305 rules:

* **JKL303** — fingerprint mismatch: the certificate was issued for a
  different (or since-edited) specification;
* **JKL304** — signature mismatch: the payload was edited after
  issuance (the signature is keyed-hash tamper *evidence*, not a
  cryptographic trust root — anyone with this source can re-sign);
* **JKL305** — malformed: wrong schema version, an inadmissible
  permutation for the configuration, or an independence table that
  does not match what the current analysis derives.

The fingerprint covers the configuration, the variant flags, the
model's label vocabulary, the packed-state width, and a digest of the
model/spec/codec sources: any change that could alter the transition
relation re-keys the certificate and stales every old one (JKL303).
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import asdict, dataclass, field, replace

from repro.errors import ReproError
from repro.jackal.params import Config, ProtocolVariant
from repro.staticcheck.findings import Finding, Severity

#: version of the certificate JSON layout; validation rejects others
CERT_SCHEMA_VERSION = 1

_SIGNING_TAG = b"repro-reduction-certificate-v1:"


def _config_dict(config: Config) -> dict:
    return {
        "threads_per_processor": list(config.threads_per_processor),
        "n_regions": config.n_regions,
        "initial_home": config.initial_home,
        "rounds": config.rounds,
        "writes_per_round": config.writes_per_round,
    }


def _variant_dict(variant: ProtocolVariant) -> dict:
    return asdict(variant)


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def spec_fingerprint(config: Config, variant: ProtocolVariant) -> str:
    """The sha256 key a certificate for this spec is issued under.

    Computed by ``repro lint`` on every run (it is part of the JSON
    report) and by every consumer before reducing.
    """
    from repro.jackal import codec as codec_mod
    from repro.jackal import model as model_mod
    from repro.jackal import mucrl_spec as spec_mod
    from repro.jackal.model import JackalModel
    from repro.staticcheck.labelcheck import model_labels

    model = JackalModel(replace(config, with_probes=True), variant)
    sources = hashlib.sha256()
    for mod in (model_mod, codec_mod, spec_mod):
        sources.update(inspect.getsource(mod).encode())
    payload = {
        "config": _config_dict(config),
        "variant": _variant_dict(variant),
        "labels": sorted(model_labels(model)),
        "state_bits": model.codec().n_bits,
        "sources": sources.hexdigest(),
    }
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass
class ReductionCertificate:
    """One certified reduction: symmetry group + independence table."""

    fingerprint: str
    config: dict
    variant: dict
    #: non-identity admissible permutations, ``{"pid_map", "tid_map"}``
    group: list = field(default_factory=list)
    #: per-label footprint table (see ``independence.ample_table``)
    independence: dict = field(default_factory=dict)
    #: how hard the equivariance self-test looked before signing
    selftest: dict = field(default_factory=dict)
    schema_version: int = CERT_SCHEMA_VERSION
    signature: str = ""

    # -- signing ---------------------------------------------------------

    def _payload(self) -> dict:
        out = asdict(self)
        out.pop("signature")
        return out

    def _digest(self) -> str:
        return hashlib.sha256(
            _SIGNING_TAG + _canonical(self._payload())
        ).hexdigest()

    def sign(self) -> "ReductionCertificate":
        self.signature = self._digest()
        return self

    def signature_valid(self) -> bool:
        return bool(self.signature) and self.signature == self._digest()

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ReductionCertificate":
        if not isinstance(data, dict):
            raise ReproError("certificate is not a JSON object")
        try:
            return cls(
                fingerprint=data["fingerprint"],
                config=data["config"],
                variant=data["variant"],
                group=data["group"],
                independence=data["independence"],
                selftest=data.get("selftest", {}),
                schema_version=data["schema_version"],
                signature=data.get("signature", ""),
            )
        except KeyError as missing:
            raise ReproError(
                f"certificate is missing required field {missing}"
            ) from None

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")


def load(path) -> ReductionCertificate:
    """Read a certificate file (malformation raises ``ReproError``)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read certificate {path}: {exc}") from exc
    return ReductionCertificate.from_dict(data)


def issue(
    config: Config,
    variant: ProtocolVariant,
    *,
    group,
    independence: dict,
    selftest: dict,
) -> ReductionCertificate:
    """Build and sign a certificate (the certifier's final step)."""
    return ReductionCertificate(
        fingerprint=spec_fingerprint(config, variant),
        config=_config_dict(config),
        variant=_variant_dict(variant),
        group=[perm.as_dict() for perm in group],
        independence=independence,
        selftest=selftest,
    ).sign()


def validate(
    cert: ReductionCertificate,
    config: Config,
    variant: ProtocolVariant,
) -> list[Finding]:
    """Every reason ``cert`` must not be trusted for this spec.

    Empty list = valid. Consumers call this before reducing anything
    and refuse (:class:`~repro.errors.ReproError`) on any finding.
    """
    # runtime imports: symmetry/independence import this module
    from repro.staticcheck.independence import ample_table
    from repro.staticcheck.symmetry import is_admissible

    findings: list[Finding] = []
    if cert.schema_version != CERT_SCHEMA_VERSION:
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/schema",
                f"unsupported certificate schema "
                f"{cert.schema_version!r} (this build reads "
                f"{CERT_SCHEMA_VERSION})",
            )
        )
        return findings
    if not cert.signature_valid():
        findings.append(
            Finding(
                "JKL304",
                Severity.ERROR,
                "certificate/signature",
                "signature does not match the payload: the certificate "
                "was tampered with or corrupted after issuance",
            )
        )
        return findings
    expected = spec_fingerprint(config, variant)
    if cert.fingerprint != expected:
        findings.append(
            Finding(
                "JKL303",
                Severity.ERROR,
                "certificate/fingerprint",
                f"certificate is keyed to {cert.fingerprint[:12]}… but "
                f"the current spec fingerprints to {expected[:12]}…: "
                "stale certificate, re-run `repro lint --certify`",
            )
        )
        return findings
    if not cert.group:
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/group",
                "certificate carries an empty permutation group: there "
                "is nothing to reduce by",
            )
        )
    for entry in cert.group:
        pid_map = entry.get("pid_map") if isinstance(entry, dict) else None
        tid_map = entry.get("tid_map") if isinstance(entry, dict) else None
        if (
            pid_map is None
            or tid_map is None
            or not is_admissible(config, pid_map, tid_map)
        ):
            findings.append(
                Finding(
                    "JKL305",
                    Severity.ERROR,
                    "certificate/group",
                    f"group entry {entry!r} is not an admissible "
                    "processor/thread permutation for "
                    f"{config.describe()}",
                )
            )
            break
    if cert.independence != ample_table(config):
        findings.append(
            Finding(
                "JKL305",
                Severity.ERROR,
                "certificate/independence",
                "independence table does not match what the current "
                "analysis derives for this configuration: re-run "
                "`repro lint --certify`",
            )
        )
    return findings
