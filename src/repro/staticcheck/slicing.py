"""Cone-of-influence slicing over packed state fields.

The independence pass (:mod:`repro.staticcheck.independence`) already
assigns every label class a read/write footprint over *coarse* atoms —
whole structures like ``copy[p]`` or ``rq[p]``. This pass refines each
structure into its packed sub-fields (the
:class:`~repro.jackal.codec.StateCodec` bit fields) and builds a
field-level dependency graph:

* the **guard set** of a class — the fine fields its enabling condition
  and emitted label can observe;
* its **flows** — for each fine field the class writes, the fine fields
  the written value is computed from.

The backward closure from the fields observable by a requirement's
formulas then yields the *cone of influence*: every field that can ever
influence an observable label or a field in the cone. Whatever falls
outside is sliceable — projecting it to a fixed value is a congruence
of the transition system (projection commutes with stepping), hence a
strong bisimulation: verdicts of *all* µ-calculus requirements,
liveness included, are preserved on the projected system.

For the Jackal spec the analysis finds exactly the ``rstate`` family
(``copy.rstate``, ``rq.rstate``, ``rqa.rstate``, ``mig.rstate``):
read-state bookkeeping the protocol threads through messages and copy
rows but that no guard ever reads and no kept field is ever computed
from — it only flows into itself. Every requirement formula closes
over ``T*`` (any-action paths), so every label class is observable for
every requirement and the per-requirement slices coincide; the section
records them per requirement regardless, with ``common_dropped`` as
the intersection the backends project by.

Trust chain (all refusals are **JKL403**):

* :func:`verify_slice` statically re-checks a dropped set against the
  current flow table — a guard reading a dropped field, or a dropped
  field flowing into a kept one, refuses the slice;
* :func:`selftest_findings` replays the congruence on a bounded
  breadth-first sample: ``successors(project(s))`` must equal
  ``project(successors(s))`` label-for-label (static analysis never
  builds an LTS — this samples exactly like the equivariance
  self-test);
* certificate validation re-derives :func:`slices_section` and rejects
  drift as JKL404 (see :mod:`repro.staticcheck.certificates`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.independence import STAR, ample_table, parse_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jackal.params import Config

#: version of the ``slices`` certificate section layout
SLICES_SCHEMA_VERSION = 1

#: every packed sub-field, index-uniform (a slice drops a field at
#: every processor/thread index, so projection commutes with the
#: certified permutations by construction)
UNIVERSE: tuple[str, ...] = (
    "thr.phase",
    "thr.reg",
    "thr.aho",
    "thr.wdone",
    "thr.rounds",
    "thr.dirty",
    "copy.home",
    "copy.rstate",
    "copy.wl",
    "copy.lt",
    "hq.slot",
    "hqa.slot",
    "rq.core",
    "rq.wl",
    "rq.rstate",
    "rqa.core",
    "rqa.wl",
    "rqa.rstate",
    "lock.srv",
    "lock.flt",
    "lock.fls",
    "mig.wl",
    "mig.rstate",
)

#: the read-state bookkeeping family — candidates the flow analysis
#: may prove sliceable (and, for the shipped spec, does)
RSTATE_FIELDS = frozenset(
    ("copy.rstate", "rq.rstate", "rqa.rstate", "mig.rstate")
)

#: coarse structure -> the fine fields a *guard* over that structure
#: can observe. ``rstate`` members are deliberately absent: no Jackal
#: guard reads them (the dynamic self-test would expose a lie here as
#: a JKL403 congruence counterexample). ``migpend`` is the pending-
#: migration predicate, a disjunction over mig/rq/rqa cores.
_COARSE_FIELDS: dict[str, tuple[str, ...]] = {
    "thr": (
        "thr.phase",
        "thr.reg",
        "thr.aho",
        "thr.wdone",
        "thr.rounds",
        "thr.dirty",
    ),
    "copy": ("copy.home", "copy.wl", "copy.lt"),
    "hq": ("hq.slot",),
    "hqa": ("hqa.slot",),
    "rq": ("rq.core", "rq.wl"),
    "rqa": ("rqa.core", "rqa.wl"),
    "lock": ("lock.srv", "lock.flt", "lock.fls"),
    "mig": ("mig.wl",),
    "migpend": ("mig.wl", "rq.core", "rqa.core"),
}

#: structure -> its rstate member (for the generic self-flow)
_STRUCT_RSTATE = {
    "copy": "copy.rstate",
    "rq": "rq.rstate",
    "rqa": "rqa.rstate",
    "mig": "mig.rstate",
}

#: where rstate values *cross* structures: class -> {dst: extra srcs}.
#: These document the real dataflow — a data return carries the home
#: copy's rstate, queue moves and signals thread it onward — and let
#: :func:`verify_slice` prove the family closed: rstate flows only
#: into rstate.
_RSTATE_XFLOWS: dict[str, dict[str, tuple[str, ...]]] = {
    "send_dataret": {"rq.rstate": ("copy.rstate",)},
    "send_dataret_mig": {"rq.rstate": ("copy.rstate",)},
    "flush_home_migrate": {"mig.rstate": ("copy.rstate",)},
    "flush_recv_migrate": {"mig.rstate": ("copy.rstate",)},
    "lock_remotequeue": {"rqa.rstate": ("rq.rstate",)},
    "signal": {"copy.rstate": ("rqa.rstate",)},
    "recv_sponmigrate": {"copy.rstate": ("mig.rstate",)},
}

_FULL = frozenset(UNIVERSE)


def _expand(atoms: Iterable[tuple[str, int]]) -> frozenset[str]:
    out: set[str] = set()
    for kind, _idx in atoms:
        out.update(_COARSE_FIELDS.get(kind, ()))
    return frozenset(out)


def fine_footprint(
    label: str, config: "Config"
) -> tuple[frozenset[str], frozenset[str]]:
    """``(guard, writes)`` fine-field sets of one label class.

    The guard set covers everything the enabling condition *and* the
    emitted label parameters can observe; writes cover every field a
    transition of the class may assign. Indices are dropped — the
    slice is index-uniform. Assertion checks read every non-rstate
    field (their guards compare phases, regions, owners and counters,
    never read-state bookkeeping — verified by the congruence
    self-test); unknown classes fail safe with the full universe,
    which forces the closure to keep everything.
    """
    from repro.staticcheck.independence import label_footprint

    name = parse_label(label)[0]
    reads, writes = label_footprint(label, config)
    if STAR in reads or STAR in writes:
        if name == "assertion_violation":
            return _FULL - RSTATE_FIELDS, frozenset()
        return _FULL, _FULL
    fine_reads = _expand(reads)
    fine_writes = set(_expand(writes))
    for kind, _idx in writes:
        rs = _STRUCT_RSTATE.get(kind)
        if rs is not None:
            fine_writes.add(rs)
    return fine_reads, frozenset(fine_writes)


def class_flows(
    label: str, config: "Config"
) -> dict[str, frozenset[str]]:
    """``{written field: fields its new value is computed from}``.

    Kept fields are conservatively computed from the whole guard set
    (control dependence included); rstate fields only from their own
    family (self-flow plus the documented cross-flows).
    """
    name = parse_label(label)[0]
    guard, writes = fine_footprint(label, config)
    xflows = _RSTATE_XFLOWS.get(name, {})
    flows: dict[str, frozenset[str]] = {}
    for dst in writes:
        if dst in RSTATE_FIELDS and guard.isdisjoint(RSTATE_FIELDS):
            flows[dst] = frozenset((dst,)) | frozenset(xflows.get(dst, ()))
        else:
            flows[dst] = guard | frozenset(xflows.get(dst, ()))
    return flows


def label_classes(config: "Config") -> tuple[str, ...]:
    """The label classes of ``config``'s vocabulary (union over
    variants, probe labels included), one representative per class."""
    seen: dict[str, str] = {}
    for label in ample_table(config)["labels"]:
        seen.setdefault(parse_label(label)[0], label)
    return tuple(seen[name] for name in sorted(seen))


def _observes_every_class(formula: object) -> bool:
    """Whether a formula's regulars quantify over arbitrary actions
    (``T*`` paths or negated predicates), making every class
    observable. All shipped requirement formulas do."""
    from repro.mucalc.syntax import AnyAct, NotAct, subformulas

    for sub in subformulas(formula):
        reg = getattr(sub, "reg", None)
        if reg is None:
            continue
        stack = [reg]
        while stack:
            node = stack.pop()
            pred = getattr(node, "pred", None)
            if isinstance(pred, (AnyAct, NotAct)):
                return True
            for attr in ("left", "right", "inner"):
                child = getattr(node, attr, None)
                if child is not None:
                    stack.append(child)
    return False


def cone_of_influence(
    config: "Config", observable: Iterable[str] | None = None
) -> tuple[frozenset[str], frozenset[str]]:
    """``(kept, dropped)`` fine fields for ``config``.

    Seeds the closure with the guard sets of the observable classes
    (``None`` = every class) and saturates over the flow graph: a
    field in the cone pulls in every field it is computed from.
    """
    classes = label_classes(config)
    if observable is not None:
        wanted = set(observable)
        classes = tuple(
            c for c in classes if parse_label(c)[0] in wanted
        ) or classes
    guards = {c: fine_footprint(c, config)[0] for c in classes}
    flows = {c: class_flows(c, config) for c in classes}
    relevant: set[str] = set()
    for c in classes:
        relevant |= guards[c]
    changed = True
    while changed:
        changed = False
        for c in classes:
            for dst, srcs in flows[c].items():
                if dst in relevant and not srcs <= relevant:
                    relevant |= srcs
                    changed = True
    kept = frozenset(relevant)
    return kept, _FULL - kept


def verify_slice(config: "Config", dropped: Iterable[str]) -> list[Finding]:
    """JKL403 findings refuting a dropped-field set.

    A slice is sound iff no guard observes a dropped field and no
    dropped field flows into a kept one; both are re-checked against
    the *current* flow table, so a slice certified against an older
    spec is refused here rather than silently mis-projected.
    """
    dropped = frozenset(dropped)
    findings: list[Finding] = []
    unknown = dropped - _FULL
    if unknown:
        findings.append(
            Finding(
                "JKL403",
                Severity.ERROR,
                "slice/fields",
                f"dropped fields {sorted(unknown)} are not packed state "
                "fields of this spec",
                data={"expected": sorted(_FULL), "found": sorted(unknown)},
            )
        )
        return findings
    for cls in label_classes(config):
        name = parse_label(cls)[0]
        guard, _writes = fine_footprint(cls, config)
        hit = sorted(guard & dropped)
        if hit:
            findings.append(
                Finding(
                    "JKL403",
                    Severity.ERROR,
                    f"slice/{name}",
                    f"guard of class {name!r} observes dropped "
                    f"field(s) {hit}: projecting them changes "
                    "enabledness, the slice is not a congruence",
                    data={"class": name, "expected": [], "found": hit},
                )
            )
            continue
        for dst, srcs in class_flows(cls, config).items():
            if dst in dropped:
                continue
            leak = sorted(srcs & dropped)
            if leak:
                findings.append(
                    Finding(
                        "JKL403",
                        Severity.ERROR,
                        f"slice/{name}",
                        f"class {name!r} computes kept field {dst!r} "
                        f"from dropped field(s) {leak}: the projection "
                        "loses information the transition relation "
                        "depends on",
                        data={
                            "class": name,
                            "field": dst,
                            "expected": [],
                            "found": leak,
                        },
                    )
                )
    return findings


def slices_section(
    config: "Config",
) -> tuple[dict | None, list[Finding]]:
    """Derive the ``slices`` certificate section for ``config``.

    Pure and deterministic — certificate validation re-derives it and
    rejects drift as JKL404. Returns ``(section, findings)``; the
    section is ``None`` when the derived slice fails its own static
    verification (JKL403), which on the shipped spec it never does.
    """
    from repro.staticcheck.formulasym import requirement_formula_families

    families = requirement_formula_families(config)
    requirements: dict[str, dict] = {}
    all_dropped: list[frozenset[str]] = []
    findings: list[Finding] = []

    def entry(observable: Iterable[str] | None) -> dict:
        kept, dropped = cone_of_influence(config, observable)
        findings.extend(verify_slice(config, dropped))
        all_dropped.append(dropped)
        return {
            "observable_classes": (
                "all" if observable is None else sorted(observable)
            ),
            "kept": sorted(kept),
            "dropped": sorted(dropped),
        }

    # requirements 1 (deadlock freeness) and 2 (assertion reachability)
    # observe the whole transition relation
    requirements["1"] = entry(None)
    requirements["2"] = entry(None)
    for req in sorted(families):
        observes_all = any(
            _observes_every_class(f) for _name, f in families[req]
        )
        requirements[req] = entry(None if observes_all else ())
    if findings:
        return None, findings
    common = frozenset(_FULL)
    for dropped in all_dropped:
        common &= dropped
    section = {
        "schema": SLICES_SCHEMA_VERSION,
        "atoms": list(UNIVERSE),
        "requirements": requirements,
        "common_dropped": sorted(common),
    }
    return section, findings


def selftest_findings(
    model: object,
    dropped: Iterable[str],
    *,
    max_states: int = 200,
    max_findings: int = 3,
) -> list[Finding]:
    """JKL403 congruence counterexamples on a bounded state sample.

    For sampled ``s``, stepping then projecting must equal projecting
    then stepping, label-for-label — the dynamic witness that the
    static flow table told the truth. Samples via the model's
    successor function only (never the exploration machinery).
    """
    from repro.staticcheck.symmetry import _sample_states

    dropped = frozenset(dropped)
    if not dropped:
        return []
    codec = model.codec()  # type: ignore[attr-defined]
    project = codec.projector(dropped)
    findings: list[Finding] = []
    for state in _sample_states(model, max_states):
        if len(state) != 8:
            continue
        projected = project(state)
        expected = sorted(
            (lbl, codec.encode(project(ns)))
            for lbl, ns in model.successors(state)  # type: ignore[attr-defined]
        )
        actual = sorted(
            (lbl, codec.encode(project(ns)))
            for lbl, ns in model.successors(projected)  # type: ignore[attr-defined]
        )
        if expected != actual:
            exp_labels = [lbl for lbl, _ in expected]
            act_labels = [lbl for lbl, _ in actual]
            diff = sorted(
                set(exp_labels).symmetric_difference(act_labels)
            ) or ["<same labels, different targets>"]
            findings.append(
                Finding(
                    "JKL403",
                    Severity.ERROR,
                    "slice/congruence",
                    "slice projection is not a congruence: stepping a "
                    "projected state and projecting the successors "
                    f"disagree at a sampled state (dropped="
                    f"{sorted(dropped)}, mismatched labels: {diff[:4]})",
                    data={
                        "dropped": sorted(dropped),
                        "mismatched_labels": diff[:4],
                    },
                )
            )
            if len(findings) >= max_findings:
                return findings
    return findings


def certified_slice(certificate: object) -> frozenset[str]:
    """The common dropped-field set a validated certificate licenses
    (empty when the certificate predates or refused slicing)."""
    section = getattr(certificate, "slices", None)
    if not isinstance(section, Mapping):
        return frozenset()
    return frozenset(section.get("common_dropped", ()))


ProjectFn = Callable[[object], object]
