"""Symmetry certifier: prove the model is permutation-invariant, once.

The Jackal model is fully symmetric in processors (with equal thread
counts) and in threads of the same processor: every rule is
index-generic, so renaming indices maps runs to runs. The paper §5.5
leaves this structure on the table; here a static pass certifies it
*before any sweep runs* and emits a signed
:class:`~repro.staticcheck.certificates.ReductionCertificate` the
exploration backends can trust (see :mod:`repro.lts.certreduce`).

Certification is three independent obligations:

1. **admissible group** — the group of processor permutations
   preserving the thread-count topology, composed with per-processor
   thread permutations, must be nontrivial (else JKL301: nothing to
   reduce by);
2. **index genericity** — the model's label vocabulary must be closed
   under every admissible permutation (a rule emitted only for ``p0``
   breaks closure), and no ``mucrl_spec`` guard may compare a
   ``sum``-bound processor/thread variable against a literal index
   (either finding is JKL301);
3. **bounded equivariance self-test** — on a breadth-first sample of
   states, ``decode ∘ permute ∘ encode`` must commute (the packed
   :class:`~repro.jackal.codec.StateCodec` layout respects the
   permutation action) and the successor relation must be equivariant:
   ``succ(π(s)) = π(succ(s))``, labels included. Any counterexample is
   JKL302 with the offending state and permutation.

Once those hold, the certifier runs the two formula-directed passes of
certificate schema v3 — formula symmetrization
(:mod:`repro.staticcheck.formulasym`, JKL401/402) and cone-of-influence
slicing (:mod:`repro.staticcheck.slicing`, JKL403) — and signs their
sections into the certificate alongside the group and the independence
table. Certification is refused, never degraded, on any ERROR.

Soundness note: the *initial* state is deliberately not required to be
a fixed point of the group (``initial_home`` picks a processor). The
reduced semantics explores the orbit quotient, whose initial node is
the orbit of the initial state; equivariance of the successor relation
is exactly what makes that quotient trace-equivalent up to renaming.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from itertools import permutations as _permutations, product
from typing import TYPE_CHECKING, Any

from repro.jackal.model import JackalModel
from repro.jackal.params import Config, ProtocolVariant
from repro.staticcheck.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.staticcheck.certificates import ReductionCertificate

#: default number of sampled states for the equivariance self-test
DEFAULT_SELFTEST_STATES = 200

_INDEX_TOKEN = re.compile(r"\b([tp])(\d+)\b")


def _remap_mask(mask: int, index_map: Sequence[int]) -> int:
    """Remap a bitmask through an index permutation."""
    out = 0
    for i, j in enumerate(index_map):
        if mask >> i & 1:
            out |= 1 << j
    return out


@dataclass(frozen=True)
class Permutation:
    """One admissible renaming of processors and threads.

    ``pid_map[p]`` is the new name of processor ``p``; ``tid_map[t]``
    the new name of global thread ``t``. Bitmask remap tables are
    precomputed (domains are tiny: ``2**P`` and ``2**T`` entries) so
    :meth:`apply` is a flat tuple rebuild.
    """

    pid_map: tuple[int, ...]
    tid_map: tuple[int, ...]
    # precomputed mask tables — derived, excluded from init/eq/repr so
    # equality and hashing stay on the two maps alone
    _pmask: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _tmask: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_pmask",
            tuple(
                _remap_mask(m, self.pid_map)
                for m in range(1 << len(self.pid_map))
            ),
        )
        object.__setattr__(
            self,
            "_tmask",
            tuple(
                _remap_mask(m, self.tid_map)
                for m in range(1 << len(self.tid_map))
            ),
        )

    @property
    def is_identity(self) -> bool:
        return self.pid_map == tuple(range(len(self.pid_map))) and (
            self.tid_map == tuple(range(len(self.tid_map)))
        )

    def as_dict(self) -> dict:
        """JSON form stored in the certificate's ``group`` list."""
        return {"pid_map": list(self.pid_map), "tid_map": list(self.tid_map)}

    # -- group structure -------------------------------------------------

    def inverse(self) -> "Permutation":
        """The inverse renaming: ``g.inverse().apply(g.apply(s)) == s``."""
        pid = [0] * len(self.pid_map)
        tid = [0] * len(self.tid_map)
        for i, j in enumerate(self.pid_map):
            pid[j] = i
        for i, j in enumerate(self.tid_map):
            tid[j] = i
        return Permutation(tuple(pid), tuple(tid))

    def compose(self, other: "Permutation") -> "Permutation":
        """``self ∘ other`` — apply ``other`` first, then ``self``
        (``(a.compose(b)).apply(s) == a.apply(b.apply(s))``)."""
        return Permutation(
            tuple(self.pid_map[p] for p in other.pid_map),
            tuple(self.tid_map[t] for t in other.tid_map),
        )

    # -- action on states ------------------------------------------------

    def _hmsg(self, msg: Any) -> Any:
        if msg == 0:
            return 0
        kind, tid, src, r = msg
        return (kind, self.tid_map[tid], self.pid_map[src], r)

    def _rmsg(self, msg: Any) -> Any:
        if msg == 0:
            return 0
        kind, tid, sender, mig, wl, rstate, r = msg
        return (
            kind,
            self.tid_map[tid],
            self.pid_map[sender],
            mig,
            self._pmask[wl],
            rstate,
            r,
        )

    def _holder(self, h: int) -> int:
        return self.tid_map[h - 1] + 1 if h else 0

    def apply(self, state: Any) -> Any:
        """The permuted state (VIOLATION is a fixed point)."""
        if len(state) != 8:
            return state
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        pm, tm = self.pid_map, self.tid_map
        pmask, tmask = self._pmask, self._tmask
        P = len(pm)
        nthreads: list[Any] = [None] * len(tm)
        for t, th in enumerate(threads):
            # thread tuples carry only phase/region/flag/counter fields,
            # all invariant under renaming: rows just move
            nthreads[tm[t]] = th
        ncopies: list[Any] = [None] * P
        nhq: list[Any] = [None] * P
        nrq: list[Any] = [None] * P
        nhqa: list[Any] = [None] * P
        nrqa: list[Any] = [None] * P
        nlocks: list[Any] = [None] * P
        nmigs: list[Any] = [None] * P
        for p in range(P):
            q = pm[p]
            ncopies[q] = tuple(
                (pm[home], rs, pmask[wl], lt)
                for home, rs, wl, lt in copies[p]
            )
            nhq[q] = self._hmsg(hq[p])
            nhqa[q] = self._hmsg(hqa[p])
            nrq[q] = self._rmsg(rq[p])
            nrqa[q] = self._rmsg(rqa[p])
            lp = locks[p]
            nlocks[q] = (
                self._holder(lp[0]),
                tmask[lp[1]],
                self._holder(lp[2]),
                tmask[lp[3]],
                self._holder(lp[4]),
                tmask[lp[5]],
            )
            nmigs[q] = tuple(
                0 if m == 0 else (pmask[m[0]], m[1]) for m in migs[p]
            )
        return (
            tuple(nthreads),
            tuple(ncopies),
            tuple(nhq),
            tuple(nrq),
            tuple(nhqa),
            tuple(nrqa),
            tuple(nlocks),
            tuple(nmigs),
        )

    # -- action on labels ------------------------------------------------

    def apply_label(self, label: str) -> str:
        """Rename the ``t<i>``/``p<j>`` tokens inside ``label``."""

        def sub(match: re.Match) -> str:
            kind, idx = match.group(1), int(match.group(2))
            table = self.tid_map if kind == "t" else self.pid_map
            if idx >= len(table):
                return match.group(0)
            return f"{kind}{table[idx]}"

        return _INDEX_TOKEN.sub(sub, label)


def admissible_group(config: Config) -> tuple[Permutation, ...]:
    """Every admissible permutation of ``config``, identity included.

    Admissible: a processor permutation ``σ`` with
    ``tpp[σ(p)] == tpp[p]`` (homes must land on topologically equal
    processors), composed with an arbitrary permutation of each
    processor's own threads. Thread ids are processor-major contiguous,
    so the induced global ``tid_map`` sends processor ``p``'s ``i``-th
    thread to processor ``σ(p)``'s ``τ_p(i)``-th thread.
    """
    tpp = config.threads_per_processor
    P = config.n_processors
    blocks = [tuple(config.thread_ids_of(p)) for p in range(P)]
    out: list[Permutation] = []
    for sigma in _permutations(range(P)):
        if any(tpp[sigma[p]] != tpp[p] for p in range(P)):
            continue
        for taus in product(*(list(_permutations(range(n))) for n in tpp)):
            tid_map = [0] * config.n_threads
            for p in range(P):
                dst = blocks[sigma[p]]
                for i, t in enumerate(blocks[p]):
                    tid_map[t] = dst[taus[p][i]]
            out.append(Permutation(tuple(sigma), tuple(tid_map)))
    return tuple(out)


def is_admissible(
    config: Config, pid_map: Sequence[int], tid_map: Sequence[int]
) -> bool:
    """Whether the two maps form an admissible permutation of ``config``
    (used by certificate validation; cheap, no group enumeration)."""
    P, T = config.n_processors, config.n_threads
    pid_map, tid_map = tuple(pid_map), tuple(tid_map)
    if sorted(pid_map) != list(range(P)) or sorted(tid_map) != list(range(T)):
        return False
    tpp = config.threads_per_processor
    if any(tpp[pid_map[p]] != tpp[p] for p in range(P)):
        return False
    # threads must follow their processor
    return all(
        config.processor_of(tid_map[t]) == pid_map[config.processor_of(t)]
        for t in range(T)
    )


# -- obligation 2: index genericity -------------------------------------


def _label_closure_findings(
    model: Any, group: Sequence[Permutation]
) -> list[Finding]:
    from repro.staticcheck.labelcheck import model_labels

    vocabulary = model_labels(model)
    findings: list[Finding] = []
    for perm in group:
        if perm.is_identity:
            continue
        permuted = {perm.apply_label(lbl) for lbl in vocabulary}
        broken = sorted(permuted - vocabulary)
        if broken:
            findings.append(
                Finding(
                    "JKL301",
                    Severity.ERROR,
                    "model/labels",
                    "label vocabulary is not closed under the admissible "
                    f"permutation pid_map={list(perm.pid_map)}: a rule "
                    "exists for some indices but not their renamings "
                    f"(e.g. {broken[0]!r} is never emitted)",
                    data={
                        "permutation": perm.as_dict(),
                        "missing": broken[:4],
                    },
                )
            )
            break
    return findings


def _guard_literal_findings() -> list[Finding]:
    """JKL301 when a shipped spec guard special-cases a processor or
    thread index: a ``sum``-bound TID/PID variable compared (or
    otherwise combined) with an integer literal is never index-generic.
    """
    from repro.algebra.terms import (
        Alt,
        Cond,
        Const,
        DVar,
        Fn,
        Seq,
        Sum,
    )
    from repro.jackal.mucrl_spec import (
        locker_system,
        region_system,
        thread_write_remote_spec,
    )

    findings: list[Finding] = []

    def expr_special_cases(expr: Any, indexed: dict[str, str]) -> bool:
        """Does ``expr`` combine an index-sorted variable with an int
        literal inside the same function application?"""
        if not isinstance(expr, Fn):
            return False
        has_index = any(
            isinstance(a, DVar) and a.name in indexed for a in expr.args
        )
        has_literal = any(
            isinstance(a, Const) and isinstance(a.value, int)
            and not isinstance(a.value, bool)
            for a in expr.args
        )
        if has_index and has_literal:
            return True
        return any(expr_special_cases(a, indexed) for a in expr.args)

    def walk(term: Any, indexed: dict[str, str], where: str) -> None:
        if isinstance(term, Sum):
            inner = dict(indexed)
            if term.sort.name in ("TID", "PID"):
                inner[term.var] = term.sort.name
            walk(term.body, inner, where)
        elif isinstance(term, Cond):
            if expr_special_cases(term.cond, indexed):
                findings.append(
                    Finding(
                        "JKL301",
                        Severity.ERROR,
                        where,
                        f"guard {term.cond} compares an index-sorted sum "
                        "variable against a literal index: the summand is "
                        "not index-generic, so no permutation symmetry "
                        "can be certified",
                    )
                )
            walk(term.then, indexed, where)
            walk(term.els, indexed, where)
        elif isinstance(term, (Seq, Alt)):
            walk(term.left, indexed, where)
            walk(term.right, indexed, where)
        else:
            sub = getattr(term, "subterms", None)
            if sub is not None:
                for t in sub():
                    walk(t, indexed, where)

    for name, spec in (
        ("region_system", region_system().spec),
        ("locker_system", locker_system().spec),
        ("thread_write_remote", thread_write_remote_spec()),
    ):
        for d in spec.defs:
            walk(d.body, {}, f"{name}/{d.name}")
    return findings


# -- obligation 3: bounded equivariance self-test -----------------------


def _sample_states(model: Any, limit: int) -> list[Any]:
    """Up to ``limit`` states by plain breadth-first walk over
    ``model.successors``. Deliberately *not* the exploration machinery:
    static analysis never builds an LTS, it samples a bounded prefix."""
    init = model.initial_state()
    seen = {init}
    frontier = [init]
    out = [init]
    while frontier and len(out) < limit:
        nxt = []
        for s in frontier:
            if len(s) != 8:
                continue
            for _lbl, ns in model.successors(s):
                if ns not in seen:
                    seen.add(ns)
                    out.append(ns)
                    nxt.append(ns)
                    if len(out) >= limit:
                        return out
        frontier = nxt
    return out


def equivariance_findings(
    model: Any,
    group: Sequence[Permutation],
    *,
    max_states: int = DEFAULT_SELFTEST_STATES,
    max_findings: int = 3,
) -> list[Finding]:
    """JKL302 counterexamples to codec/successor equivariance."""
    findings: list[Finding] = []
    perms = [g for g in group if not g.is_identity]
    if not perms:
        return findings
    codec = model.codec()
    for state in _sample_states(model, max_states):
        for perm in perms:
            permuted = perm.apply(state)
            if codec.decode(codec.encode(permuted)) != permuted:
                findings.append(
                    Finding(
                        "JKL302",
                        Severity.ERROR,
                        "model/codec",
                        "decode(encode(permute(s))) != permute(s) for "
                        f"pid_map={list(perm.pid_map)}: the packed layout "
                        "does not respect the permutation action",
                        data={"permutation": perm.as_dict()},
                    )
                )
            expected = sorted(
                (perm.apply_label(lbl), perm.apply(ns))
                for lbl, ns in model.successors(state)
            )
            actual = sorted(model.successors(permuted))
            if expected != actual:
                exp_labels = [lbl for lbl, _ in expected]
                act_labels = [lbl for lbl, _ in actual]
                diff = sorted(
                    set(exp_labels).symmetric_difference(act_labels)
                ) or ["<same labels, different targets>"]
                findings.append(
                    Finding(
                        "JKL302",
                        Severity.ERROR,
                        "model/successors",
                        "successor relation is not equivariant under "
                        f"pid_map={list(perm.pid_map)} "
                        f"tid_map={list(perm.tid_map)}: permuting and "
                        "stepping disagree at a sampled state "
                        f"(mismatched labels: {diff[:4]})",
                        data={
                            "permutation": perm.as_dict(),
                            "mismatched_labels": diff[:4],
                        },
                    )
                )
            if len(findings) >= max_findings:
                return findings
    return findings


# -- the certifier -------------------------------------------------------


def certify(
    config: Config,
    variant: ProtocolVariant,
    *,
    model: Any = None,
    max_states: int = DEFAULT_SELFTEST_STATES,
) -> tuple[ReductionCertificate | None, list[Finding]]:
    """Attempt to certify symmetry + independence for ``config``.

    Returns ``(certificate, findings)``: a signed
    :class:`~repro.staticcheck.certificates.ReductionCertificate` and
    the (possibly empty) list of findings. On any ERROR finding the
    certificate is ``None`` — certification is refused, never degraded.

    ``model`` defaults to the probe-enabled model of the configuration
    (probes are part of the Requirement-3 vocabulary, so the self-test
    covers them); pass a model instance to certify a mutated build, as
    the CI mutation smoke does.
    """
    from repro.staticcheck import independence
    from repro.staticcheck.certificates import issue

    findings: list[Finding] = []
    group = admissible_group(config)
    nontrivial = [g for g in group if not g.is_identity]
    if not nontrivial:
        findings.append(
            Finding(
                "JKL301",
                Severity.ERROR,
                f"config/{config.describe()}",
                "only the identity permutation is admissible for this "
                "topology: there is no symmetry to reduce by",
            )
        )
        return None, findings
    if model is None:
        model = JackalModel(replace(config, with_probes=True), variant)
    findings.extend(_label_closure_findings(model, nontrivial))
    findings.extend(_guard_literal_findings())
    if not any(f.severity == Severity.ERROR for f in findings):
        findings.extend(
            equivariance_findings(model, nontrivial, max_states=max_states)
        )
    if any(f.severity == Severity.ERROR for f in findings):
        return None, findings
    # formula-directed passes (certificate schema v3): symmetrize the
    # requirement formulas under the certified group and derive the
    # cone-of-influence field slice, each with its own refusals
    from repro.staticcheck.formulasym import (
        formulas_section,
        vocabulary_findings,
    )
    from repro.staticcheck.slicing import selftest_findings, slices_section

    formulas, formula_findings = formulas_section(config)
    findings.extend(formula_findings)
    if formulas is not None:
        findings.extend(vocabulary_findings(model, config, nontrivial))
    slices, slice_findings = slices_section(config)
    findings.extend(slice_findings)
    dropped: frozenset = frozenset()
    if slices is not None and not any(
        f.severity == Severity.ERROR for f in findings
    ):
        dropped = frozenset(slices["common_dropped"])
        findings.extend(
            selftest_findings(model, dropped, max_states=max_states)
        )
    if any(f.severity == Severity.ERROR for f in findings):
        return None, findings
    assert formulas is not None and slices is not None
    cert = issue(
        config,
        variant,
        group=nontrivial,
        independence=independence.ample_table(config),
        formulas=formulas,
        slices=slices,
        selftest={
            "states_sampled": max_states,
            "permutations": len(nontrivial),
            "slice_states_sampled": max_states if dropped else 0,
        },
    )
    return cert, findings
