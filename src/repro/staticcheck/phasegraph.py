"""Per-thread phase graph of the protocol, for static lock reasoning.

A thread of :class:`~repro.jackal.model.JackalModel` moves through the
phases of :class:`~repro.jackal.model.Phase`; each move acquires,
releases or waits on some of the protocol lock slots of its processor.
This module projects the model's rule set onto that thread-local view:
nodes are phases, edges are protocol rules annotated with their lock
effects. The projection is *static* — it is derived from the model's
configuration and :class:`~repro.jackal.params.ProtocolVariant` flags,
never by exploring states — which is what lets ``repro lint`` reason
about lock discipline in milliseconds where the LTS takes minutes.

The extraction deliberately mirrors the dispatch structure of
``JackalModel.successors`` (one edge per thread-moving rule, plus the
three lock-grant rules of the lock manager); the self-check test pins
the two against each other by asserting that every phase the model can
put a thread in appears in the graph.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from enum import IntEnum

from repro.jackal.model import Phase
from repro.jackal.params import ProtocolVariant


class LockSlot(IntEnum):
    """The three per-processor protocol locks a thread can hold.

    These are the holder slots of the model's six-slot lock tuple (the
    other three slots are the waiter bitmasks, which the dataflow
    tracks through :attr:`PhaseRule.waits`).
    """

    SERVER = 0
    FAULT = 1
    FLUSH = 2

    def __str__(self) -> str:
        return self.name.lower()


#: which held slots prevent a wait on the key slot from ever being
#: granted, per the lock manager's grant conditions in the model
#: (server needs the flush lock free; fault needs the flush lock free;
#: flush needs all three free)
GRANT_BLOCKERS: dict[LockSlot, frozenset[LockSlot]] = {
    LockSlot.SERVER: frozenset({LockSlot.FLUSH}),
    LockSlot.FAULT: frozenset({LockSlot.FLUSH}),
    LockSlot.FLUSH: frozenset(
        {LockSlot.SERVER, LockSlot.FAULT, LockSlot.FLUSH}
    ),
}


@dataclass(frozen=True)
class PhaseRule:
    """One protocol rule as seen by a single thread.

    Attributes
    ----------
    name:
        The rule's label family (matching the action labels the model
        emits, without thread/processor parameters).
    src, dst:
        Thread phase before and after the rule fires.
    acquires, releases:
        Lock slots whose *holder* field this rule takes or frees.
    waits:
        Lock slots this rule enqueues the thread on (the grant arrives
        later through a separate lock-manager rule).
    home_side:
        True when the rule's guard places the thread's processor as the
        region's home and the rule touches (or commits the thread to)
        the home copy — the operations the protocol serialises through
        the server lock (or the flush lock, whose grant condition
        excludes every other lock holder).
    """

    name: str
    src: Phase
    dst: Phase
    acquires: frozenset = frozenset()
    releases: frozenset = frozenset()
    waits: frozenset = frozenset()
    home_side: bool = False

    def describe(self) -> str:
        return f"{self.src.name} -[{self.name}]-> {self.dst.name}"


@dataclass(frozen=True)
class PhaseGraph:
    """The per-thread phase graph of one protocol variant."""

    variant: ProtocolVariant
    rules: tuple[PhaseRule, ...]

    @property
    def phases(self) -> frozenset:
        out = {r.src for r in self.rules} | {r.dst for r in self.rules}
        return frozenset(out)

    def rules_from(self, phase: Phase) -> tuple[PhaseRule, ...]:
        return tuple(r for r in self.rules if r.src == phase)


def _r(
    name: str,
    src: Phase,
    dst: Phase,
    *,
    acq: Iterable[LockSlot] = (),
    rel: Iterable[LockSlot] = (),
    wait: Iterable[LockSlot] = (),
    home_side: bool = False,
) -> PhaseRule:
    return PhaseRule(
        name=name,
        src=src,
        dst=dst,
        acquires=frozenset(acq),
        releases=frozenset(rel),
        waits=frozenset(wait),
        home_side=home_side,
    )


def phase_graph(variant: ProtocolVariant) -> PhaseGraph:
    """Extract the thread phase graph for ``variant``.

    One edge per rule in ``JackalModel`` that moves a thread, with the
    rule's lock effects on the thread's own processor. Rules gated on a
    variant flag appear only when the flag enables them, so linting a
    buggy variant sees the buggy rule set.
    """
    SRV, FLT, FLS = LockSlot.SERVER, LockSlot.FAULT, LockSlot.FLUSH
    rules: list[PhaseRule] = [
        # -- IDLE: start a write or a flush ----------------------------
        _r("write_local", Phase.IDLE, Phase.LOCAL),
        _r("write_at_home", Phase.IDLE, Phase.WANT_SERVER, wait=[SRV]),
        _r("write_remote", Phase.IDLE, Phase.WANT_FAULT, wait=[FLT]),
        _r("flush_start", Phase.IDLE, Phase.WANT_FLUSH, wait=[FLS]),
        # -- lock manager grants ---------------------------------------
        _r("lock_server", Phase.WANT_SERVER, Phase.HAVE_SERVER, acq=[SRV]),
        _r("lock_fault", Phase.WANT_FAULT, Phase.HAVE_FAULT, acq=[FLT]),
        _r("lock_flush", Phase.WANT_FLUSH, Phase.HAVE_FLUSH, acq=[FLS]),
        # -- server-lock write path ------------------------------------
        _r(
            "writeover_at_home",
            Phase.HAVE_SERVER,
            Phase.IDLE,
            rel=[SRV],
            home_side=True,
        ),
        _r(
            "restart_write",
            Phase.HAVE_SERVER,
            Phase.WANT_FAULT,
            rel=[SRV],
            wait=[FLT],
        ),
        # -- fault-lock (remote) write path ----------------------------
        _r("send_datareq", Phase.HAVE_FAULT, Phase.WAIT_DATA),
        _r("signal", Phase.WAIT_DATA, Phase.REMOTE_READY),
        _r("writeover_remote", Phase.REMOTE_READY, Phase.IDLE, rel=[FLT]),
        # -- flush-lock path -------------------------------------------
        _r("flushover", Phase.HAVE_FLUSH, Phase.IDLE, rel=[FLS]),
        _r(
            "flush_home",
            Phase.HAVE_FLUSH,
            Phase.HAVE_FLUSH,
            home_side=True,
        ),
        _r("send_flush", Phase.HAVE_FLUSH, Phase.HAVE_FLUSH),
        # -- local (valid cached copy) write ---------------------------
        _r("writeover_local", Phase.LOCAL, Phase.IDLE),
    ]
    if variant.fault_lock_recheck:
        # the Error-1 fix: the fault-lock holder re-checks the home and,
        # finding itself at home, trades the fault lock for the server
        # lock before touching the home copy
        rules.append(
            _r(
                "fault_to_server",
                Phase.HAVE_FAULT,
                Phase.WANT_SERVER,
                rel=[FLT],
                wait=[SRV],
            )
        )
    else:
        # the Error-1 bug: the access check inside the fault handler
        # finds a valid local copy (this processor *is* the home) and
        # the thread continues down the remote-write path regardless,
        # still holding only the fault lock
        rules.append(
            _r(
                "stale_remote_wait",
                Phase.HAVE_FAULT,
                Phase.WAIT_DATA,
                home_side=True,
            )
        )
    if variant.adaptive_lazy_flushing:
        rules += [
            _r("alf_write", Phase.IDLE, Phase.ALF_WRITE),
            _r("alf_writeover", Phase.ALF_WRITE, Phase.IDLE),
            _r("alf_write_restart", Phase.ALF_WRITE, Phase.IDLE),
            _r("alf_flush", Phase.IDLE, Phase.ALF_FLUSH),
            _r("alf_flushover", Phase.ALF_FLUSH, Phase.IDLE),
            _r(
                "alf_flush_restart",
                Phase.ALF_FLUSH,
                Phase.WANT_FLUSH,
                wait=[FLS],
            ),
        ]
    return PhaseGraph(variant=variant, rules=tuple(rules))
