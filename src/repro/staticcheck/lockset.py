"""Lockset dataflow over the thread phase graph.

A forward fixpoint from IDLE computes, for every reachable phase, the
*may*-held and *must*-held sets of protocol lock slots (union / meet
over all paths, the classic gen-kill lattice). The checks then read the
fixpoint:

* **JKL001** — a rule acquires a slot its thread must already hold;
* **JKL002** — a rule releases a slot that may (or must) be free;
* **JKL003** — IDLE is reachable with a lock possibly still held
  (acquire/release imbalance around the write/flush cycle);
* **JKL004** — a rule enqueues the thread on a lock while it still
  holds a slot that blocks that lock's grant (self-deadlock by the
  lock manager's own exclusion rules);
* **JKL005** — a home-side operation fires in a phase where the thread
  must hold the *fault* lock and cannot hold the server or flush lock.
  This is the static signature of the paper's **Error 1**: the thread
  took the fault lock for a remote write, the region's home migrated to
  its own processor underneath it, and it continues down the
  remote-write path — at-home work under the wrong lock;
* **JKL006** — a phase no rule path can reach from IDLE (dead phase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jackal.model import Phase
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.phasegraph import (
    GRANT_BLOCKERS,
    LockSlot,
    PhaseGraph,
    PhaseRule,
)

_ALL = frozenset(LockSlot)


def _fmt(slots: frozenset[LockSlot]) -> str:
    if not slots:
        return "{}"
    return "{" + ", ".join(str(s) for s in sorted(slots)) + "}"


@dataclass(frozen=True)
class LocksetResult:
    """The dataflow fixpoint: per-phase may/must locksets."""

    may: dict
    must: dict

    def reachable(self) -> frozenset:
        return frozenset(self.may)


def compute_locksets(graph: PhaseGraph) -> LocksetResult:
    """Forward fixpoint from ``Phase.IDLE`` with empty locksets.

    Transfer of a rule: ``out = (in - releases) | acquires``. Waits do
    not change held slots (the matching grant rule performs the
    acquire). ``may`` joins by union, ``must`` by intersection.
    """
    may: dict = {Phase.IDLE: frozenset()}
    must: dict = {Phase.IDLE: frozenset()}
    work = [Phase.IDLE]
    while work:
        p = work.pop()
        for rule in graph.rules_from(p):
            out_may = (may[p] - rule.releases) | rule.acquires
            out_must = (must[p] - rule.releases) | rule.acquires
            q = rule.dst
            if q not in may:
                may[q], must[q] = out_may, out_must
                work.append(q)
                continue
            new_may = may[q] | out_may
            new_must = must[q] & out_must
            if new_may != may[q] or new_must != must[q]:
                may[q], must[q] = new_may, new_must
                work.append(q)
    return LocksetResult(may=may, must=must)


def _check_rule(
    rule: PhaseRule, may_in: frozenset, must_in: frozenset
) -> list[Finding]:
    out: list[Finding] = []
    loc = rule.describe()
    for s in sorted(rule.acquires):
        if s in must_in:
            out.append(
                Finding(
                    "JKL001",
                    Severity.ERROR,
                    loc,
                    f"acquires the {s} lock while already holding it "
                    f"(held on every path: {_fmt(must_in)})",
                )
            )
    for s in sorted(rule.releases):
        if s not in may_in:
            out.append(
                Finding(
                    "JKL002",
                    Severity.ERROR,
                    loc,
                    f"releases the {s} lock, which is free on every path "
                    f"into {rule.src.name}",
                )
            )
        elif s not in must_in:
            out.append(
                Finding(
                    "JKL002",
                    Severity.WARNING,
                    loc,
                    f"releases the {s} lock, which some path into "
                    f"{rule.src.name} arrives without "
                    f"(may={_fmt(may_in)}, must={_fmt(must_in)})",
                )
            )
    held_after = (must_in - rule.releases) | rule.acquires
    for w in sorted(rule.waits):
        blockers = GRANT_BLOCKERS[w] & held_after
        if blockers:
            out.append(
                Finding(
                    "JKL004",
                    Severity.ERROR,
                    loc,
                    f"waits for the {w} lock while still holding "
                    f"{_fmt(blockers)}, which block(s) its grant: the "
                    "thread deadlocks against its own processor's lock "
                    "manager",
                )
            )
    if rule.home_side:
        safe = {LockSlot.SERVER, LockSlot.FLUSH}
        if LockSlot.FAULT in must_in and not (safe & must_in):
            out.append(
                Finding(
                    "JKL005",
                    Severity.ERROR,
                    loc,
                    "home-side operation with only the fault lock held "
                    f"(must={_fmt(must_in)}): the home migrated here "
                    "while the thread queued for a remote write and it "
                    "continues down the remote path — the paper's "
                    "Error 1 (the thread will wait for a Data Return "
                    "no one sends)",
                )
            )
    return out


def lint_locksets(graph: PhaseGraph) -> list[Finding]:
    """Run the dataflow and all JKL0xx checks over ``graph``."""
    result = compute_locksets(graph)
    findings: list[Finding] = []
    for rule in graph.rules:
        if rule.src not in result.may:
            continue  # only reachable rules are judged
        findings.extend(
            _check_rule(rule, result.may[rule.src], result.must[rule.src])
        )
    leftover = result.may.get(Phase.IDLE, frozenset())
    if leftover:
        findings.append(
            Finding(
                "JKL003",
                Severity.ERROR,
                Phase.IDLE.name,
                f"a write/flush cycle can return to IDLE still holding "
                f"{_fmt(leftover)} — acquire/release imbalance",
            )
        )
    reachable = result.reachable()
    for phase in sorted(graph.phases, key=int):
        if phase not in reachable:
            findings.append(
                Finding(
                    "JKL006",
                    Severity.WARNING,
                    phase.name,
                    "phase is unreachable from IDLE in the phase graph "
                    "(dead rule set)",
                )
            )
    return findings
