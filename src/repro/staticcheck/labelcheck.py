"""Cross-check formula labels against the model's label vocabulary.

A mu-calculus requirement that quotes a label the model can never emit
is *vacuously* satisfied (a box over an empty match set holds
everywhere), which is exactly how a misspelt label silently turns a
liveness check off. This pass enumerates every label the model can emit
— statically, from the ``lbl_*`` tables that
``JackalModel._precompute_labels`` builds for the configured thread and
processor counts — and diffs that vocabulary against the action
literals appearing in requirement formulas:

* **JKL201** — an exact label literal matches no emittable label;
* **JKL202** — a prefix literal (``ActLit(..., prefix=True)``) matches
  no emittable label.

Both are errors: a formula over a phantom label checks nothing.

The enumeration is an over-approximation of *reachably* emitted labels
(a rule's label is listed even if its guard never fires in the explored
configuration) with two variant-aware refinements: ``fault_to_server``
only exists when the variant has the Error-1 fix, ``stale_remote_wait``
only when it does not, and probe labels only when the configuration
enables probes.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.jackal.actions import PROBE_LABELS
from repro.mucalc.syntax import (
    ActionPredicate,
    ActLit,
    AndAct,
    Box,
    Diamond,
    Formula,
    NotAct,
    OrAct,
    RAct,
    RAlt,
    Regular,
    RSeq,
    RStar,
    subformulas,
)
from repro.staticcheck.findings import Finding, Severity


def _flatten(value: Any, out: set[str]) -> None:
    if isinstance(value, str):
        out.add(value)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _flatten(v, out)


def model_labels(model: Any) -> frozenset[str]:
    """Every label ``model`` can emit, from its precomputed tables."""
    out: set[str] = set()
    for attr, value in vars(model).items():
        if attr.startswith("lbl_"):
            _flatten(value, out)
    # variant refinement: exactly one of the two Error-1 rules exists
    if model.variant.fault_lock_recheck:
        out.difference_update(model.lbl_stale)
    else:
        out.difference_update(model.lbl_f2s)
    if model.config.with_probes:
        out.update(PROBE_LABELS)
    return frozenset(out)


def _lits_in_pred(pred: ActionPredicate) -> Iterator[ActLit]:
    if isinstance(pred, ActLit):
        yield pred
    elif isinstance(pred, NotAct):
        yield from _lits_in_pred(pred.inner)
    elif isinstance(pred, (OrAct, AndAct)):
        yield from _lits_in_pred(pred.left)
        yield from _lits_in_pred(pred.right)
    # AnyAct quotes no label


def _lits_in_regular(reg: Regular) -> Iterator[ActLit]:
    if isinstance(reg, RAct):
        yield from _lits_in_pred(reg.pred)
    elif isinstance(reg, (RSeq, RAlt)):
        yield from _lits_in_regular(reg.left)
        yield from _lits_in_regular(reg.right)
    elif isinstance(reg, RStar):
        yield from _lits_in_regular(reg.inner)


def formula_literals(formula: Formula) -> list[ActLit]:
    """All :class:`ActLit` occurrences in ``formula``, modalities
    included, in deterministic order."""
    out: list[ActLit] = []
    for sub in subformulas(formula):
        if isinstance(sub, (Box, Diamond)):
            out.extend(_lits_in_regular(sub.reg))
    seen: set[ActLit] = set()
    unique: list[ActLit] = []
    for lit in out:
        if lit not in seen:
            seen.add(lit)
            unique.append(lit)
    return unique


def lint_labels(
    model: Any, formulas: Iterable[tuple[str, Formula]]
) -> list[Finding]:
    """Diff the labels quoted by ``formulas`` against ``model``'s
    vocabulary."""
    labels = model_labels(model)
    findings: list[Finding] = []
    for name, formula in formulas:
        for lit in formula_literals(formula):
            if lit.prefix:
                if not any(label.startswith(lit.label) for label in labels):
                    findings.append(
                        Finding(
                            "JKL202",
                            Severity.ERROR,
                            name,
                            f"label prefix {lit.label!r}* matches none of "
                            f"the {len(labels)} labels this model can "
                            "emit: the modality is vacuous",
                        )
                    )
            elif lit.label not in labels:
                findings.append(
                    Finding(
                        "JKL201",
                        Severity.ERROR,
                        name,
                        f"label {lit.label!r} is never emitted by this "
                        "model (misspelt, or out of range for "
                        f"{model.config.n_threads} threads / "
                        f"{model.config.n_processors} processors): the "
                        "formula is vacuous",
                    )
                )
    return findings
