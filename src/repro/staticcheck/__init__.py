"""Static protocol analysis (``repro lint``) — no exploration needed.

The analyzer approximates, in milliseconds and without building any
LTS, the lock-discipline and vacuity mistakes the paper's model
checking found the slow way: lockset dataflow over the protocol phase
graph, lints over the muCRL-style specifications, and a cross-check of
formula labels against the model's vocabulary.

It also certifies reductions (``repro lint --certify``): a symmetry +
independence analysis whose signed :class:`ReductionCertificate` the
exploration backends demand before they quotient by processor/thread
permutations or prune commuting interleavings.
"""

from repro.staticcheck.analyzer import default_formulas, run_lint
from repro.staticcheck.certificates import (
    CERT_SCHEMA_VERSION,
    ReductionCertificate,
    issue,
    load,
    spec_fingerprint,
    validate,
)
from repro.staticcheck.findings import (
    LINT_SCHEMA_VERSION,
    RULES,
    Finding,
    LintReport,
    Severity,
)
from repro.staticcheck.independence import (
    ample_table,
    label_footprint,
    may_commute,
)
from repro.staticcheck.labelcheck import (
    formula_literals,
    lint_labels,
    model_labels,
)
from repro.staticcheck.lockset import compute_locksets, lint_locksets
from repro.staticcheck.phasegraph import (
    GRANT_BLOCKERS,
    LockSlot,
    PhaseGraph,
    PhaseRule,
    phase_graph,
)
from repro.staticcheck.speclint import lint_spec, lint_system
from repro.staticcheck.symmetry import (
    Permutation,
    admissible_group,
    certify,
    is_admissible,
)

__all__ = [
    "CERT_SCHEMA_VERSION",
    "GRANT_BLOCKERS",
    "LINT_SCHEMA_VERSION",
    "RULES",
    "Finding",
    "LintReport",
    "LockSlot",
    "Permutation",
    "PhaseGraph",
    "PhaseRule",
    "ReductionCertificate",
    "Severity",
    "admissible_group",
    "ample_table",
    "certify",
    "compute_locksets",
    "default_formulas",
    "formula_literals",
    "is_admissible",
    "issue",
    "label_footprint",
    "lint_labels",
    "lint_locksets",
    "lint_spec",
    "lint_system",
    "load",
    "may_commute",
    "model_labels",
    "phase_graph",
    "run_lint",
    "spec_fingerprint",
    "validate",
]
