"""Static protocol analysis (``repro lint``) — no exploration needed.

The analyzer approximates, in milliseconds and without building any
LTS, the lock-discipline and vacuity mistakes the paper's model
checking found the slow way: lockset dataflow over the protocol phase
graph, lints over the muCRL-style specifications, and a cross-check of
formula labels against the model's vocabulary.
"""

from repro.staticcheck.analyzer import default_formulas, run_lint
from repro.staticcheck.findings import RULES, Finding, LintReport, Severity
from repro.staticcheck.labelcheck import (
    formula_literals,
    lint_labels,
    model_labels,
)
from repro.staticcheck.lockset import compute_locksets, lint_locksets
from repro.staticcheck.phasegraph import (
    GRANT_BLOCKERS,
    LockSlot,
    PhaseGraph,
    PhaseRule,
    phase_graph,
)
from repro.staticcheck.speclint import lint_spec, lint_system

__all__ = [
    "GRANT_BLOCKERS",
    "RULES",
    "Finding",
    "LintReport",
    "LockSlot",
    "PhaseGraph",
    "PhaseRule",
    "Severity",
    "compute_locksets",
    "default_formulas",
    "formula_literals",
    "lint_labels",
    "lint_locksets",
    "lint_spec",
    "lint_system",
    "model_labels",
    "phase_graph",
    "run_lint",
]
