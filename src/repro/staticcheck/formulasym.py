"""Formula symmetrization: certify the *property* side of the quotient.

PR 6's symmetry certificate proves the model equivariant under the
admissible permutation group, which licenses the orbit quotient for
orbit-invariant properties — Requirement 3's formulas quote only
index-free probe labels, so the probe LTS has taken the full quotient
since then. The plain LTS could not: Requirement 4's per-thread
inevitability formulas (``[T*."write(t0)"] mu X. ...``) quote concrete
thread indices and are individually *not* invariant, so the backends
fell back to ample pruning only (the restriction recorded in ROADMAP
open item 2).

This pass closes that gap statically. For every requirement formula it
computes the orbit under the certified group — permuting a formula
means renaming the ``t<i>``/``p<j>`` tokens inside its action literals
— and classifies the formula family of each requirement:

* **invariant** — every group element maps the formula to itself
  (Requirement 3.1/3.2, and Requirement 4 on a one-thread orbit);
* **orbit-closed** — permuting maps each formula to another member of
  the same requirement's family (Requirement 4's ``write(t0)`` …
  family on symmetric topologies). The *orbit conjunction*
  ``∧_{t ∈ orbit} φ_t`` is then group-invariant as a property, which
  licenses the full-quotient *sweep*; the formulas themselves still
  quote concrete indices whose frames the quotient merges away, so the
  checker evaluates them on the quotient's exact group-unfolding
  (:func:`repro.lts.certreduce.unfold_full_quotient`), never on the
  quotient LTS directly;
* **asymmetric** — a permuted formula leaves the family. The full
  quotient would be unsound for it, so certification refuses:

  - **JKL401** — a formula is genuinely asymmetric under the group
    (its permutation is not in the requirement's family);
  - **JKL402** — permuting a formula literal produces a label outside
    the model's vocabulary (the property quotes an index the renamed
    model cannot emit).

Requirements 1 and 2 carry no formulas but are quotient-safe by
construction: deadlock freeness observes only the (index-generic)
done-state predicate, and Requirement 2 observes the
``assertion_violation`` label *class*, which is closed under index
renaming. The resulting ``formulas`` certificate section records all
of this, and its ``plain_quotient: "full"`` verdict is what
:func:`repro.jackal.requirements.build_lts` consults before running
the plain LTS under the full symmetry quotient.
"""

from __future__ import annotations

from functools import reduce
from typing import TYPE_CHECKING, Sequence

from repro.errors import ReproError
from repro.mucalc.syntax import (
    ActionPredicate,
    ActLit,
    And,
    AndAct,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    Not,
    NotAct,
    Nu,
    Or,
    OrAct,
    RAct,
    RAlt,
    Regular,
    RSeq,
    RStar,
    Tt,
    Var,
)
from repro.staticcheck.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jackal.params import Config
    from repro.staticcheck.symmetry import Permutation

#: version of the ``formulas`` certificate section layout
FORMULAS_SCHEMA_VERSION = 1


# -- the group action on formulas ----------------------------------------


def _permute_pred(pred: ActionPredicate, perm: "Permutation") -> ActionPredicate:
    if isinstance(pred, AnyAct):
        return pred
    if isinstance(pred, ActLit):
        renamed = perm.apply_label(pred.label)
        return pred if renamed == pred.label else ActLit(renamed, pred.prefix)
    if isinstance(pred, NotAct):
        return NotAct(_permute_pred(pred.inner, perm))
    if isinstance(pred, OrAct):
        return OrAct(
            _permute_pred(pred.left, perm), _permute_pred(pred.right, perm)
        )
    if isinstance(pred, AndAct):
        return AndAct(
            _permute_pred(pred.left, perm), _permute_pred(pred.right, perm)
        )
    raise ReproError(f"cannot permute action predicate {pred!r}")


def _permute_regular(reg: Regular, perm: "Permutation") -> Regular:
    if isinstance(reg, RAct):
        return RAct(_permute_pred(reg.pred, perm))
    if isinstance(reg, RSeq):
        return RSeq(
            _permute_regular(reg.left, perm), _permute_regular(reg.right, perm)
        )
    if isinstance(reg, RAlt):
        return RAlt(
            _permute_regular(reg.left, perm), _permute_regular(reg.right, perm)
        )
    if isinstance(reg, RStar):
        return RStar(_permute_regular(reg.inner, perm))
    raise ReproError(f"cannot permute regular formula {reg!r}")


def permute_formula(f: Formula, perm: "Permutation") -> Formula:
    """The formula with every ``t<i>``/``p<j>`` label token renamed.

    Structural rebuild through the AST; fixpoint variables are inert
    (they name sets, not indices). The result is a plain formula, so
    equality against other family members is structural equality.
    """
    if isinstance(f, (Tt, Ff, Var)):
        return f
    if isinstance(f, And):
        return And(permute_formula(f.left, perm), permute_formula(f.right, perm))
    if isinstance(f, Or):
        return Or(permute_formula(f.left, perm), permute_formula(f.right, perm))
    if isinstance(f, Not):
        return Not(permute_formula(f.inner, perm))
    if isinstance(f, Diamond):
        return Diamond(
            _permute_regular(f.reg, perm), permute_formula(f.inner, perm)
        )
    if isinstance(f, Box):
        return Box(
            _permute_regular(f.reg, perm), permute_formula(f.inner, perm)
        )
    if isinstance(f, Mu):
        return Mu(f.var, permute_formula(f.body, perm))
    if isinstance(f, Nu):
        return Nu(f.var, permute_formula(f.body, perm))
    raise ReproError(f"cannot permute formula {f!r}")


# -- requirement formula families ----------------------------------------


def requirement_formula_families(
    config: "Config",
) -> dict[str, list[tuple[str, Formula]]]:
    """The named µ-calculus formulas each requirement evaluates on
    ``config`` — the exact objects :mod:`repro.jackal.requirements`
    checks (fair Requirement-4 variants on cyclic configurations), so
    the certificate certifies what actually runs."""
    from repro.jackal.requirements import (
        formula_3_1,
        formula_3_2_bad_state,
        formula_4_flush,
        formula_4_write,
    )

    fair = config.rounds is None
    families: dict[str, list[tuple[str, Formula]]] = {
        "3.1": [("formula_3_1", formula_3_1())]
    }
    if config.n_processors == 2:
        families["3.2"] = [("formula_3_2_bad_state", formula_3_2_bad_state())]
    fam4: list[tuple[str, Formula]] = []
    for tid in range(config.n_threads):
        fam4.append(
            (f"formula_4_write(t{tid})", formula_4_write(tid, fair=fair))
        )
        fam4.append(
            (f"formula_4_flush(t{tid})", formula_4_flush(tid, fair=fair))
        )
    families["4"] = fam4
    return families


def thread_orbits(config: "Config") -> tuple[tuple[int, ...], ...]:
    """The orbits of global thread ids under the admissible group,
    each sorted, in order of their smallest member."""
    from repro.staticcheck.symmetry import admissible_group

    group = admissible_group(config)
    orbits: list[tuple[int, ...]] = []
    seen: set[int] = set()
    for t in range(config.n_threads):
        if t in seen:
            continue
        orbit = tuple(sorted({g.tid_map[t] for g in group}))
        seen.update(orbit)
        orbits.append(orbit)
    return tuple(orbits)


def _conjunction(formulas: Sequence[Formula]) -> Formula:
    return reduce(And, formulas)


def requirement4_orbit_formulas(
    config: "Config", *, fair: bool
) -> list[tuple[str, Formula]]:
    """Requirement 4 symmetrized: one orbit conjunction per thread
    orbit and completion kind, each group-invariant as a property —
    the invariance that licenses the full-quotient sweep. The checker
    evaluates them on the quotient's group-unfolding (the conjuncts
    quote concrete thread indices, which the quotient LTS itself
    cannot decide); failure attribution is per orbit
    (``write({t0,t1})``), matching the symmetry the certificate
    proves."""
    from repro.jackal.requirements import formula_4_flush, formula_4_write

    out: list[tuple[str, Formula]] = []
    for orbit in thread_orbits(config):
        ids = ",".join(f"t{t}" for t in orbit)
        out.append(
            (
                f"write({{{ids}}})",
                _conjunction([formula_4_write(t, fair=fair) for t in orbit]),
            )
        )
        out.append(
            (
                f"flush({{{ids}}})",
                _conjunction([formula_4_flush(t, fair=fair) for t in orbit]),
            )
        )
    return out


# -- the analysis ---------------------------------------------------------


def _family_status(
    req: str,
    family: list[tuple[str, Formula]],
    perms: Sequence["Permutation"],
) -> tuple[dict[str, str], list[list[str]], list[Finding]]:
    """Per-formula status, the orbit partition, and JKL401 findings."""
    lookup = {f: name for name, f in family}
    statuses: dict[str, str] = {}
    orbit_sets: list[frozenset[str]] = []
    findings: list[Finding] = []
    for name, f in family:
        members = {name}
        invariant = True
        for perm in perms:
            pf = permute_formula(f, perm)
            if pf == f:
                continue
            invariant = False
            other = lookup.get(pf)
            if other is None:
                findings.append(
                    Finding(
                        "JKL401",
                        Severity.ERROR,
                        f"requirement {req}/{name}",
                        "formula is asymmetric under the certified group: "
                        f"renaming by pid_map={list(perm.pid_map)} "
                        f"tid_map={list(perm.tid_map)} yields a formula "
                        "outside the requirement's family, so no "
                        "symmetrized orbit conjunction exists and the "
                        "full quotient would be unsound — refusing",
                        data={
                            "requirement": req,
                            "formula": name,
                            "permutation": perm.as_dict(),
                            "expected": sorted(n for _, n in lookup.items()),
                            "found": str(pf),
                        },
                    )
                )
                break
            members.add(other)
        statuses[name] = "invariant" if invariant else "orbit"
        orbit_sets.append(frozenset(members))
    orbits = sorted({tuple(sorted(o)) for o in orbit_sets})
    return statuses, [list(o) for o in orbits], findings


def formulas_section(
    config: "Config",
    families: dict[str, list[tuple[str, Formula]]] | None = None,
) -> tuple[dict | None, list[Finding]]:
    """Derive the ``formulas`` certificate section for ``config``.

    Pure and deterministic (certificate validation re-derives it and
    rejects drift as JKL404): the admissible group, the requirement
    formula families, and their orbit structure are all functions of
    the configuration alone. Returns ``(section, findings)``; the
    section is ``None`` when any family is asymmetric (JKL401) — there
    is no degraded section, matching how certification refuses.

    ``families`` overrides the shipped requirement families; the CI
    mutation smoke feeds a deliberately asymmetric family through it.
    """
    from repro.staticcheck.symmetry import admissible_group

    perms = [g for g in admissible_group(config) if not g.is_identity]
    if families is None:
        families = requirement_formula_families(config)
    requirements: dict[str, dict] = {
        "1": {
            "status": "invariant",
            "reason": "deadlock freeness observes only the index-generic "
            "done-state predicate",
        },
        "2": {
            "status": "invariant",
            "reason": "observed by the assertion_violation label class, "
            "closed under index renaming",
        },
    }
    findings: list[Finding] = []
    for req in sorted(families):
        family = families[req]
        statuses, orbits, fam_findings = _family_status(req, family, perms)
        findings.extend(fam_findings)
        if fam_findings:
            continue
        entry: dict = {
            "status": (
                "invariant"
                if all(s == "invariant" for s in statuses.values())
                else "orbit-closed"
            ),
            "formulas": {n: statuses[n] for n in sorted(statuses)},
            "orbits": orbits,
        }
        if req == "4":
            entry["mode"] = "fair" if config.rounds is None else "exact"
        requirements[req] = entry
    if findings:
        return None, findings
    section = {
        "schema": FORMULAS_SCHEMA_VERSION,
        "group_size": len(perms),
        "requirements": requirements,
        # every requirement checked on the plain LTS (1, 2, 4) is
        # invariant or orbit-closed, so the plain sweep may take the
        # full symmetry quotient instead of ample-only
        "plain_quotient": "full",
    }
    return section, findings


def vocabulary_findings(
    model: object,
    config: "Config",
    perms: Sequence["Permutation"],
    families: dict[str, list[tuple[str, Formula]]] | None = None,
) -> list[Finding]:
    """JKL402: a formula literal whose renaming leaves the model's
    label vocabulary. The literal itself matching (JKL201/202 vet
    that) but its orbit not means the property quotes structure the
    renamed model cannot emit — the quotient would silently turn the
    permuted conjunct off, so certification refuses instead."""
    from repro.staticcheck.labelcheck import formula_literals, model_labels

    vocab = model_labels(model)

    def matches(label: str, prefix: bool) -> bool:
        if prefix:
            return any(entry.startswith(label) for entry in vocab)
        return label in vocab

    if families is None:
        families = requirement_formula_families(config)
    findings: list[Finding] = []
    for req in sorted(families):
        for name, f in families[req]:
            for lit in formula_literals(f):
                if not matches(lit.label, lit.prefix):
                    continue  # JKL201/JKL202 report phantom originals
                for perm in perms:
                    renamed = perm.apply_label(lit.label)
                    if renamed == lit.label or matches(renamed, lit.prefix):
                        continue
                    findings.append(
                        Finding(
                            "JKL402",
                            Severity.ERROR,
                            f"requirement {req}/{name}",
                            f"permuting label {lit.label!r} by "
                            f"tid_map={list(perm.tid_map)} yields "
                            f"{renamed!r}, which the model never emits: "
                            "the formula's orbit leaves the label "
                            "vocabulary, so the symmetrized property "
                            "is vacuous — refusing the quotient",
                            data={
                                "requirement": req,
                                "formula": name,
                                "permutation": perm.as_dict(),
                                "expected": lit.label,
                                "found": renamed,
                            },
                        )
                    )
                    break
    return findings


def licenses_full_quotient(certificate: object) -> bool:
    """Whether a validated certificate's ``formulas`` section licenses
    the full symmetry quotient for the plain (probe-free) LTS."""
    section = getattr(certificate, "formulas", None)
    return bool(section) and section.get("plain_quotient") == "full"
