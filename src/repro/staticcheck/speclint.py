"""Static lints over process-algebra specifications.

:class:`~repro.algebra.spec.Spec` already rejects hard errors (unknown
processes, arity mismatches, unbound variables) at construction. This
linter finds the *well-formed but wrong* specifications the paper's
authors report losing time to — guards that can never fire, summands
that are dead weight, and communication functions that silently never
synchronise because one side's action name is misspelt:

* **JKL101** — a guard is statically unsatisfiable (no assignment of
  its sum-bound variables makes it true), or constant in a way that
  kills a non-``delta`` branch;
* **JKL102** — a dead summand: a ``delta`` alternative, or a term
  sequenced after ``delta`` (which never terminates);
* **JKL103** — a ``sum`` variable its body never reads (the sum only
  multiplies identical summands);
* **JKL104** — a communication pair names an action no process in the
  system ever performs (the synchronisation can never fire);
* **JKL105** — an encapsulation/hiding set names an action never
  performed (harmless at runtime, but almost always a typo);
* **JKL106** — a communication pair whose action names appear in no
  encapsulation set: the synchronisation is declared but never
  *forced*, so both sides can still fire unsynchronised (the
  misspelt-sync cousin of JKL104/JKL105).

Guard satisfiability is decided by enumeration over the finite sorts of
enclosing ``sum`` binders (the only place this algebra attaches sorts to
variables); guards over process parameters are skipped, not guessed.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator

from repro.algebra.composition import Comm, Encap, Hide, Par, Rename
from repro.algebra.spec import ProcessDef, Spec
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Delta,
    ProcessTerm,
    Seq,
    Sum,
)
from repro.staticcheck.findings import Finding, Severity

#: refuse to enumerate guard environments beyond this many combinations
_MAX_GUARD_ENVS = 4096


def _used_vars(term: ProcessTerm) -> frozenset[str]:
    """Free data variables actually read somewhere under ``term``."""
    return term.free()


def _walk_guards(
    term: ProcessTerm,
    scope: dict,
    where: str,
    findings: list[Finding],
) -> None:
    if isinstance(term, Cond):
        free = term.cond.free()
        if all(v in scope for v in free):
            domains = [[(v, val) for val in scope[v].values] for v in free]
            n_envs = 1
            for d in domains:
                n_envs *= len(d)
            if n_envs <= _MAX_GUARD_ENVS:
                outcomes = {
                    bool(term.cond.eval(dict(env)))
                    for env in product(*domains)
                }
                if outcomes == {False} and not isinstance(term.then, Delta):
                    findings.append(
                        Finding(
                            "JKL101",
                            Severity.ERROR,
                            where,
                            f"guard {term.cond} is unsatisfiable: the "
                            "then-branch is dead",
                        )
                    )
                elif outcomes == {True} and not isinstance(term.els, Delta):
                    findings.append(
                        Finding(
                            "JKL101",
                            Severity.ERROR,
                            where,
                            f"guard {term.cond} is a tautology: the "
                            "else-branch is dead",
                        )
                    )
        _walk_guards(term.then, scope, where, findings)
        _walk_guards(term.els, scope, where, findings)
        return
    if isinstance(term, Sum):
        if term.var not in _used_vars(term.body):
            findings.append(
                Finding(
                    "JKL103",
                    Severity.WARNING,
                    where,
                    f"sum variable {term.var} is never used: the sum "
                    f"only multiplies an identical summand "
                    f"{len(term.sort.values)} times",
                )
            )
        _walk_guards(
            term.body, {**scope, term.var: term.sort}, where, findings
        )
        return
    if isinstance(term, Seq):
        if isinstance(term.left, Delta):
            findings.append(
                Finding(
                    "JKL102",
                    Severity.ERROR,
                    where,
                    f"term {term.right} is sequenced after delta and can "
                    "never execute",
                )
            )
        _walk_guards(term.left, scope, where, findings)
        _walk_guards(term.right, scope, where, findings)
        return
    if isinstance(term, Alt):
        for branch in (term.left, term.right):
            if isinstance(branch, Delta):
                findings.append(
                    Finding(
                        "JKL102",
                        Severity.WARNING,
                        where,
                        "delta alternative is a dead summand (x + delta "
                        "= x)",
                    )
                )
        _walk_guards(term.left, scope, where, findings)
        _walk_guards(term.right, scope, where, findings)
        return
    if isinstance(term, (Par, Encap, Hide, Rename)):
        for sub in term.subterms():
            _walk_guards(sub, scope, where, findings)
        return
    # Act / Call / Delta carry no nested process terms


def _actions_performed(term: ProcessTerm, spec: Spec, seen: set) -> set[str]:
    """Action names syntactically performable under ``term``, following
    process calls (each definition expanded once)."""
    out: set[str] = set()
    if isinstance(term, Act):
        out.add(term.name)
    elif isinstance(term, Call):
        if term.name not in seen:
            seen.add(term.name)
            out |= _actions_performed(spec.lookup(term.name).body, spec, seen)
    elif isinstance(term, (Seq, Alt)):
        out |= _actions_performed(term.left, spec, seen)
        out |= _actions_performed(term.right, spec, seen)
    elif isinstance(term, (Sum,)):
        out |= _actions_performed(term.body, spec, seen)
    elif isinstance(term, Cond):
        out |= _actions_performed(term.then, spec, seen)
        out |= _actions_performed(term.els, spec, seen)
    elif isinstance(term, Rename):
        mapping = term.as_dict()
        inner = _actions_performed(term.inner, spec, seen)
        out |= {mapping.get(a, a) for a in inner}
    elif isinstance(term, (Par, Encap, Hide)):
        for sub in term.subterms():
            out |= _actions_performed(sub, spec, seen)
    return out


def _comms_in(term: ProcessTerm) -> list[Comm]:
    out = []
    if isinstance(term, Par):
        if term.comm is not None:
            out.append(term.comm)
        for sub in term.subterms():
            out.extend(_comms_in(sub))
    elif isinstance(term, (Encap, Hide, Rename)):
        for sub in term.subterms():
            out.extend(_comms_in(sub))
    elif isinstance(term, (Seq, Alt)):
        out.extend(_comms_in(term.left))
        out.extend(_comms_in(term.right))
    elif isinstance(term, (Sum, Cond)):
        inner = (term.body,) if isinstance(term, Sum) else (term.then, term.els)
        for sub in inner:
            out.extend(_comms_in(sub))
    return out


def _sync_sets_in(term: ProcessTerm) -> Iterator[tuple[str, Any]]:
    """Yield ``(kind, names)`` for every Encap/Hide set under ``term``."""
    if isinstance(term, Encap):
        yield "encap", term.names
    elif isinstance(term, Hide):
        yield "hide", term.names
    if isinstance(term, (Par, Encap, Hide, Rename)):
        for sub in term.subterms():
            yield from _sync_sets_in(sub)
    elif isinstance(term, (Seq, Alt)):
        yield from _sync_sets_in(term.left)
        yield from _sync_sets_in(term.right)
    elif isinstance(term, Sum):
        yield from _sync_sets_in(term.body)
    elif isinstance(term, Cond):
        yield from _sync_sets_in(term.then)
        yield from _sync_sets_in(term.els)


def lint_spec(spec: Spec, name: str = "<spec>") -> list[Finding]:
    """JKL101-103 over every definition of ``spec``."""
    findings: list[Finding] = []
    for d in spec.defs:
        assert isinstance(d, ProcessDef)
        _walk_guards(d.body, {}, f"{name}/{d.name}", findings)
    return findings


def lint_system(system: Any, name: str = "<system>") -> list[Finding]:
    """All spec lints over a :class:`~repro.algebra.semantics.SpecSystem`.

    Adds the cross-cutting checks that need the closed composition: the
    communication function (JKL104) and the encapsulation/hiding sets
    (JKL105) are diffed against the actions the composed processes can
    actually perform.
    """
    spec, init = system.spec, system.init_term
    findings = lint_spec(spec, name)
    _walk_guards(init, {}, f"{name}/<init>", findings)
    performed = _actions_performed(init, spec, set())
    encap_names: set[str] = set()
    for kind, names in _sync_sets_in(init):
        if kind == "encap":
            encap_names |= set(names)
    comm_results: set[str] = set()
    for comm in _comms_in(init):
        for pair, result in comm.table:
            comm_results.add(result)
            missing = False
            for action in sorted(pair):
                if action not in performed:
                    missing = True
                    findings.append(
                        Finding(
                            "JKL104",
                            Severity.ERROR,
                            f"{name}/<comm>",
                            f"communication {sorted(pair)} -> {result} "
                            f"references action {action!r}, which no "
                            "process in the system performs: the "
                            "synchronisation can never fire",
                        )
                    )
            if not missing and not (set(pair) & encap_names):
                # the pair can fire, but nothing forces it to: neither
                # operand is encapsulated, so each side can still step
                # alone and the composed behaviour silently loses the
                # synchronisation
                findings.append(
                    Finding(
                        "JKL106",
                        Severity.WARNING,
                        f"{name}/<comm>",
                        f"communication {sorted(pair)} -> {result} is "
                        "never forced: no action of the pair appears in "
                        "any encapsulation set, so both sides can fire "
                        "unsynchronised",
                    )
                )
    for kind, names in _sync_sets_in(init):
        for action in sorted(names):
            if action not in performed and action not in comm_results:
                findings.append(
                    Finding(
                        "JKL105",
                        Severity.WARNING,
                        f"{name}/<{kind}>",
                        f"{kind} set names action {action!r}, which no "
                        "process performs (typo?)",
                    )
                )
    return findings
