"""A value-level simulator of the Jackal DSM runtime.

Where :mod:`repro.jackal.model` verifies the *coherence protocol* at the
paper's data-free abstraction, this module simulates the *runtime
semantics* that protocol supports (paper Section 4): regions holding
actual values, software access checks, per-thread flush lists,
twinning, diffing, and home-based multiple-writer merging:

* shared variables live in *regions* (several variables may share one —
  Jackal regions are objects or array partitions, so false sharing is
  the norm, and concurrent writers to one region are merged by diffs);
* a thread's first access to a non-local region *fetches* an up-to-date
  copy from the region's home and adds it to the flush list;
* a remote write first *twins* the region (a pristine snapshot kept for
  diffing), then updates the working copy;
* at a synchronisation point (lock/unlock) the thread flushes: for each
  region on the flush list the difference between working copy and twin
  is applied to the home copy, and the cached copy is invalidated —
  self-invalidation, exactly the paper's memory model.

Exploring all interleavings yields the outcome set of the runtime,
which :func:`repro.jmm.litmus.run_conformance` checks against the
abstract JMM (the paper's stated future work).

The simulator is per-processor (all threads of one processor share a
cached copy), matching Jackal.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import ModelError
from repro.jmm.program import Program


class DSMMachine:
    """A :class:`~repro.lts.explore.TransitionSystem` running a litmus
    program on the simulated Jackal runtime.

    Parameters
    ----------
    program:
        The litmus program.
    placement:
        Processor of each thread, e.g. ``(0, 1)``; defaults to one
        processor per thread.
    region_map:
        Maps each shared variable to a region id; variables mapped to
        the same region share a cache/twin/diff unit. Default: all
        variables in one region (maximal false sharing, the hardest
        case for a multiple-writer protocol).
    home:
        Home processor of every region (default 0) — kept static here;
        home *migration* is the concern of the protocol model, not of
        the value semantics.
    """

    def __init__(
        self,
        program: Program,
        placement: tuple[int, ...] | None = None,
        region_map: dict[str, int] | None = None,
        home: int = 0,
    ):
        self.program = program
        self.vars = program.shared_names()
        self.var_index = {v: i for i, v in enumerate(self.vars)}
        self.reg_index = {r: i for i, r in enumerate(program.registers)}
        self.n_threads = program.n_threads
        if placement is None:
            placement = tuple(range(self.n_threads))
        if len(placement) != self.n_threads:
            raise ModelError("placement must name a processor per thread")
        self.placement = placement
        self.n_proc = max(placement) + 1
        if region_map is None:
            region_map = {v: 0 for v in self.vars}
        self.region_of = tuple(region_map[v] for v in self.vars)
        self.n_regions = max(self.region_of) + 1
        self.home = home
        if not 0 <= home < max(self.n_proc, 1):
            raise ModelError(f"home processor {home} out of range")
        # cells of each region, as var indices in order
        self.region_cells: list[list[int]] = [[] for _ in range(self.n_regions)]
        for vi, r in enumerate(self.region_of):
            self.region_cells[r].append(vi)

    # -- state layout -----------------------------------------------------------
    #
    # (pcs, regs, homedata, caches, twins, dirty, lock)
    #   homedata[r]        = tuple of cell values (authoritative copy)
    #   caches[p][r]       = None (invalid) or tuple of cell values
    #   twins[p][r]        = None or pristine snapshot for diffing
    #   dirty[p]           = region bitmask (the processor's flush list)
    #   lock               = holder thread + 1 (0 free)

    def initial_state(self):
        init = dict(self.program.shared)
        homedata = tuple(
            tuple(init[self.vars[vi]] for vi in self.region_cells[r])
            for r in range(self.n_regions)
        )
        none_row = (None,) * self.n_regions
        return (
            (0,) * self.n_threads,
            (None,) * len(self.program.registers),
            homedata,
            (none_row,) * self.n_proc,
            (none_row,) * self.n_proc,
            (0,) * self.n_proc,
            0,
        )

    def is_final(self, state) -> bool:
        pcs = state[0]
        return all(
            pcs[t] >= len(self.program.threads[t]) for t in range(self.n_threads)
        )

    def outcome(self, state) -> tuple:
        return state[1]

    # -- cell addressing ------------------------------------------------------

    def _cell(self, var_idx: int) -> tuple[int, int]:
        r = self.region_of[var_idx]
        return r, self.region_cells[r].index(var_idx)

    # -- successors ---------------------------------------------------------------

    def successors(self, state) -> Iterable[tuple[str, Hashable]]:
        out: list[tuple[str, tuple]] = []
        pcs = state[0]
        for t in range(self.n_threads):
            prog = self.program.threads[t]
            if pcs[t] < len(prog):
                self._step(state, t, prog.stmts[pcs[t]], out)
        return out

    def _step(self, state, t: int, stmt, out) -> None:
        pcs, regs, homedata, caches, twins, dirty, lockh = state
        p = self.placement[t]
        npcs = pcs[:t] + (pcs[t] + 1,) + pcs[t + 1 :]

        if stmt.kind in ("use", "assign"):
            vi = self.var_index[stmt.var]
            r, c = self._cell(vi)
            at_home = p == self.home
            if not at_home and caches[p][r] is None:
                # access check failed: fetch an up-to-date copy from home
                ncaches = self._put(caches, p, r, homedata[r])
                ns = (pcs, regs, homedata, ncaches, twins, dirty, lockh)
                out.append((f"fetch(t{t},r{r})", ns))
                return  # the access retries after the fetch

            if stmt.kind == "use":
                data = homedata[r] if at_home else caches[p][r]
                val = data[c]
                ri = self.reg_index[stmt.reg]
                nregs = regs[:ri] + (val,) + regs[ri + 1 :]
                ns = (npcs, nregs, homedata, caches, twins, dirty, lockh)
                out.append((f"use(t{t},{stmt.var},{val})", ns))
                return

            # assign
            if stmt.fn is not None:
                env = {rg: regs[i] for rg, i in self.reg_index.items()}
                val = stmt.fn(*(env[s] for s in stmt.srcs))
            else:
                val = stmt.value
            if at_home:
                row = homedata[r]
                nhome = (
                    homedata[:r]
                    + (row[:c] + (val,) + row[c + 1 :],)
                    + homedata[r + 1 :]
                )
                ns = (npcs, regs, nhome, caches, twins, dirty, lockh)
                out.append((f"assign(t{t},{stmt.var},{val})", ns))
                return
            ntwins = twins
            if twins[p][r] is None:
                # first write since fetch: twin the pristine copy
                ntwins = self._put(twins, p, r, caches[p][r])
            row = caches[p][r]
            ncaches = self._put(caches, p, r, row[:c] + (val,) + row[c + 1 :])
            ndirty = dirty[:p] + (dirty[p] | (1 << r),) + dirty[p + 1 :]
            ns = (npcs, regs, homedata, ncaches, ntwins, ndirty, lockh)
            out.append((f"assign(t{t},{stmt.var},{val})", ns))
            return

        if stmt.kind in ("lock", "unlock"):
            p_dirty = dirty[self.placement[t]]
            if p_dirty or any(x is not None for x in caches[self.placement[t]]):
                # synchronisation point: flush the processor's flush
                # list first (diff dirty regions, invalidate all copies)
                ns = self._flush(state, t)
                out.append((f"flush(t{t})", ns))
                return
            if stmt.kind == "lock":
                if lockh != 0:
                    return
                ns = (npcs, regs, homedata, caches, twins, dirty, t + 1)
                out.append((f"lock(t{t})", ns))
            else:
                if lockh != t + 1:
                    return
                ns = (npcs, regs, homedata, caches, twins, dirty, 0)
                out.append((f"unlock(t{t})", ns))
            return

        if stmt.kind == "compute":
            env = {rg: regs[i] for rg, i in self.reg_index.items()}
            args = [env[s] for s in stmt.srcs]
            val = stmt.fn(*args)
            ri = self.reg_index[stmt.reg]
            nregs = regs[:ri] + (val,) + regs[ri + 1 :]
            ns = (npcs, nregs, homedata, caches, twins, dirty, lockh)
            out.append((f"compute(t{t},{stmt.reg},{val})", ns))
            return

        raise ModelError(f"unknown statement kind {stmt.kind!r}")

    def _flush(self, state, t: int):
        """Apply diffs of all dirty regions to home; invalidate copies."""
        pcs, regs, homedata, caches, twins, dirty, lockh = state
        p = self.placement[t]
        nhome = list(homedata)
        for r in range(self.n_regions):
            if dirty[p] >> r & 1:
                twin = twins[p][r]
                working = caches[p][r]
                if twin is None or working is None:  # pragma: no cover
                    raise ModelError("dirty region without twin/copy")
                # diff: only cells this processor changed are written home
                merged = tuple(
                    w if w != tw else h
                    for w, tw, h in zip(working, twin, nhome[r])
                )
                nhome[r] = merged
        none_row = (None,) * self.n_regions
        ncaches = caches[:p] + (none_row,) + caches[p + 1 :]
        ntwins = twins[:p] + (none_row,) + twins[p + 1 :]
        ndirty = dirty[:p] + (0,) + dirty[p + 1 :]
        return (pcs, regs, tuple(nhome), ncaches, ntwins, ndirty, lockh)

    @staticmethod
    def _put(rows, p: int, r: int, val):
        row = rows[p]
        nrow = row[:r] + (val,) + row[r + 1 :]
        return rows[:p] + (nrow,) + rows[p + 1 :]


def dsm_outcomes(
    program: Program,
    *,
    placement: tuple[int, ...] | None = None,
    region_map: dict[str, int] | None = None,
    home: int = 0,
    max_states: int | None = 1_000_000,
) -> set[tuple]:
    """All register outcomes the simulated Jackal runtime can produce."""
    machine = DSMMachine(program, placement, region_map, home)
    outcomes: set[tuple] = set()
    seen = {machine.initial_state()}
    stack = [machine.initial_state()]
    while stack:
        s = stack.pop()
        if machine.is_final(s):
            outcomes.add(machine.outcome(s))
        for _label, nxt in machine.successors(s):
            if nxt not in seen:
                seen.add(nxt)
                if max_states is not None and len(seen) > max_states:
                    raise ModelError(
                        f"DSM outcome enumeration exceeded {max_states} states"
                    )
                stack.append(nxt)
    return outcomes
