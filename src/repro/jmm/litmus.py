"""Litmus tests and the DSM-implements-JMM conformance check.

Each :class:`LitmusTest` carries a program, the placement used for the
DSM runtime, and (for the classical tests) the outcome facts worth
asserting. :func:`run_conformance` performs the check the paper lists
as future work: every outcome the simulated Jackal runtime can produce
must be allowed by the abstract JMM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jmm.dsm import dsm_outcomes
from repro.jmm.machine import allowed_outcomes
from repro.jmm.program import Program, assign, lock, make_program, unlock, use


@dataclass
class LitmusTest:
    """A named litmus program with its analysis parameters."""

    name: str
    program: Program
    placement: tuple[int, ...]
    #: region id per shared variable for the DSM run (None = one region)
    region_map: dict[str, int] | None = None
    #: outcomes that MUST be JMM-allowed (sanity anchors)
    must_allow: set[tuple] = field(default_factory=set)
    #: outcomes that MUST NOT be JMM-allowed
    must_forbid: set[tuple] = field(default_factory=set)
    description: str = ""


@dataclass
class ConformanceResult:
    """Outcome of one conformance run."""

    test: str
    jmm_outcomes: set[tuple]
    dsm_outcomes: set[tuple]

    @property
    def conforms(self) -> bool:
        """DSM outcomes are a subset of JMM-allowed outcomes."""
        return self.dsm_outcomes <= self.jmm_outcomes

    @property
    def extra(self) -> set[tuple]:
        """DSM outcomes the JMM forbids (empty iff conformant)."""
        return self.dsm_outcomes - self.jmm_outcomes

    def summary(self) -> str:
        verdict = "conforms" if self.conforms else f"VIOLATES (extra: {self.extra})"
        return (
            f"{self.test}: JMM allows {len(self.jmm_outcomes)}, "
            f"DSM produces {len(self.dsm_outcomes)} -> {verdict}"
        )


def store_buffering() -> LitmusTest:
    """SB: ``x:=1; r1:=y || y:=1; r2:=x``. Without synchronisation the
    JMM (like the DSM) allows the relaxed outcome r1=r2=0."""
    prog = make_program(
        threads=[
            [assign("x", 1), use("y", "r1")],
            [assign("y", 1), use("x", "r2")],
        ],
        shared={"x": 0, "y": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="store_buffering",
        program=prog,
        placement=(0, 1),
        must_allow={(0, 0), (1, 1), (1, 0), (0, 1)},
        description="classic SB; (0,0) is the relaxed outcome",
    )


def message_passing() -> LitmusTest:
    """MP without synchronisation: ``x:=1; y:=1 || r1:=y; r2:=x``.
    The original JMM permits r1=1, r2=0 (no ordering between the two
    variables' write-backs)."""
    prog = make_program(
        threads=[
            [assign("x", 1), assign("y", 1)],
            [use("y", "r1"), use("x", "r2")],
        ],
        shared={"x": 0, "y": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="message_passing",
        program=prog,
        placement=(0, 1),
        must_allow={(0, 0), (1, 1), (1, 0), (0, 1)},
        description="unsynchronised MP; the stale (1,0) outcome is legal",
    )


def message_passing_sync() -> LitmusTest:
    """MP with lock/unlock around both halves: the stale outcome
    r1=1, r2=0 becomes impossible — synchronisation points flush and
    self-invalidate, exactly the Jackal memory model."""
    prog = make_program(
        threads=[
            [lock(), assign("x", 1), assign("y", 1), unlock()],
            [lock(), use("y", "r1"), use("x", "r2"), unlock()],
        ],
        shared={"x": 0, "y": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="message_passing_sync",
        program=prog,
        placement=(0, 1),
        must_allow={(0, 0), (1, 1)},
        must_forbid={(1, 0)},
        description="locked MP; (1,0) must be forbidden by the JMM",
    )


def coherence_single_var() -> LitmusTest:
    """Two writers to one variable, two readers each reading twice."""
    prog = make_program(
        threads=[
            [assign("x", 1)],
            [assign("x", 2)],
            [use("x", "r1"), use("x", "r2")],
        ],
        shared={"x": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="coherence_single_var",
        program=prog,
        placement=(0, 1, 0),
        must_allow={(0, 0), (1, 1), (2, 2), (1, 2), (2, 1)},
        description="write-write race observed by a reader",
    )


def dekker_sync() -> LitmusTest:
    """SB with full lock protection: only interleaving-consistent
    outcomes remain; in particular (0,0) is forbidden."""
    prog = make_program(
        threads=[
            [lock(), assign("x", 1), use("y", "r1"), unlock()],
            [lock(), assign("y", 1), use("x", "r2"), unlock()],
        ],
        shared={"x": 0, "y": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="dekker_sync",
        program=prog,
        placement=(0, 1),
        must_allow={(1, 0), (0, 1)},
        must_forbid={(0, 0)},
        description="locked SB; mutual exclusion forbids (0,0)",
    )


def false_sharing() -> LitmusTest:
    """Two processors write different variables in the *same region*;
    diffing must merge both writes (the multiple-writer protocol's
    raison d'etre)."""
    prog = make_program(
        threads=[
            [lock(), assign("x", 1), unlock()],
            [lock(), assign("y", 1), unlock()],
            [lock(), use("x", "r1"), use("y", "r2"), unlock()],
        ],
        shared={"x": 0, "y": 0},
        registers=["r1", "r2"],
    )
    return LitmusTest(
        name="false_sharing",
        program=prog,
        placement=(0, 1, 2),
        region_map={"x": 0, "y": 0},
        must_allow={(1, 1)},
        description="concurrent writers to one region merge by diffs",
    )


def read_own_write() -> LitmusTest:
    """A thread must see its own unflushed write."""
    prog = make_program(
        threads=[[assign("x", 1), use("x", "r1")]],
        shared={"x": 0},
    )
    return LitmusTest(
        name="read_own_write",
        program=prog,
        placement=(1,),
        must_allow={(1,)},
        must_forbid={(0,)},
        description="per-thread program order on one variable",
    )


def two_plus_two_w() -> LitmusTest:
    """2+2W: two threads each write both variables in opposite order."""
    prog = make_program(
        threads=[
            [assign("x", 1), assign("y", 2)],
            [assign("y", 1), assign("x", 2)],
            [use("x", "r1"), use("y", "r2")],
        ],
        shared={"x": 0, "y": 0},
    )
    return LitmusTest(
        name="two_plus_two_w",
        program=prog,
        placement=(0, 1, 2),
        must_allow={(1, 1), (2, 2), (1, 2), (2, 1)},
        description="write-write races on two variables",
    )


def corr_same_processor() -> LitmusTest:
    """Two reads of one variable by threads sharing a processor see a
    consistent (shared-copy) view in the DSM runtime."""
    prog = make_program(
        threads=[
            [lock(), assign("x", 1), unlock()],
            [use("x", "r1")],
            [use("x", "r2")],
        ],
        shared={"x": 0},
    )
    return LitmusTest(
        name="corr_same_processor",
        program=prog,
        placement=(0, 1, 1),
        must_allow={(0, 0), (1, 1), (0, 1), (1, 0)},
        description="readers share one cached copy",
    )


def LITMUS_TESTS() -> list[LitmusTest]:
    """All bundled litmus tests."""
    return [
        store_buffering(),
        message_passing(),
        message_passing_sync(),
        coherence_single_var(),
        dekker_sync(),
        false_sharing(),
        read_own_write(),
        two_plus_two_w(),
        corr_same_processor(),
    ]


def run_conformance(test: LitmusTest) -> ConformanceResult:
    """Enumerate JMM-allowed and DSM-produced outcomes for ``test``."""
    jmm = allowed_outcomes(test.program)
    dsm = dsm_outcomes(
        test.program,
        placement=test.placement,
        region_map=test.region_map,
    )
    return ConformanceResult(
        test=test.name, jmm_outcomes=jmm, dsm_outcomes=dsm
    )
