"""The abstract Java Memory Model as a transition system.

This is the memory model of the paper's Section 3 — JLS (1st ed.)
chapter 17 — made operational: every thread owns a *working memory*
caching the shared *main memory*; the eight actions are individual
transitions subject to the chapter's ordering constraints:

* ``use``/``assign`` act on the working copy (a ``use`` requires the
  copy to exist, i.e. an earlier ``assign`` or ``load``);
* ``store`` snapshots a dirty working copy into a per-(thread,
  variable) transit buffer; the matching ``write`` commits it to main
  memory later (store precedes its write, FIFO per pair — enforced by
  the capacity-one buffer);
* ``read`` snapshots main memory into a transit buffer; the matching
  ``load`` installs it into working memory later, and may not clobber a
  dirty copy ("a store must intervene between an assign and a
  subsequent load");
* ``lock`` empties the working memory (subsequent uses must re-load)
  and requires all dirty data to be flushed first; ``unlock`` requires
  the same flush. Both act on one global lock object.

Exploring this machine with :func:`repro.lts.explore` enumerates every
behaviour the JMM allows for a program; the set of final register
valuations is the program's *allowed outcome set*, the reference against
which the DSM runtime simulator is checked.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import ModelError
from repro.jmm.program import Program

#: sentinel for an undefined working copy / empty transit slot
_ABSENT = None


class JMMMachine:
    """A :class:`~repro.lts.explore.TransitionSystem` over a litmus
    program under the original JMM.

    State layout (all tuples)::

        (pcs, regs, working, dirty, rtransit, stransit, main, lock)

    where ``working[t][v]``, ``rtransit[t][v]``, ``stransit[t][v]`` are
    values or ``None``, ``dirty[t]`` is a variable bitmask, ``main[v]``
    the main-memory values and ``lock`` the holding thread + 1 (0 =
    free).
    """

    def __init__(self, program: Program):
        self.program = program
        self.vars = program.shared_names()
        self.var_index = {v: i for i, v in enumerate(self.vars)}
        self.reg_index = {r: i for i, r in enumerate(program.registers)}
        self.n_threads = program.n_threads
        self.n_vars = len(self.vars)
        # future_uses[t][pc]: bitmask of variables thread t still uses at
        # or after pc. Spontaneous read/load of a variable a thread will
        # never use again cannot influence any register (loads create no
        # dirty data), so pruning them preserves the outcome set while
        # cutting the interleaving explosion dramatically.
        self.future_uses: list[list[int]] = []
        for tp in program.threads:
            masks = [0] * (len(tp) + 1)
            for pc in range(len(tp) - 1, -1, -1):
                m = masks[pc + 1]
                s = tp.stmts[pc]
                if s.kind == "use":
                    m |= 1 << self.var_index[s.var]
                masks[pc] = m
            self.future_uses.append(masks)

    # -- initial state ------------------------------------------------------

    def initial_state(self):
        nt, nv = self.n_threads, self.n_vars
        empty_row = (_ABSENT,) * nv
        return (
            (0,) * nt,  # pcs
            (_ABSENT,) * len(self.program.registers),  # regs
            (empty_row,) * nt,  # working copies
            (0,) * nt,  # dirty masks
            (empty_row,) * nt,  # read transit
            (empty_row,) * nt,  # store transit
            tuple(val for _v, val in self.program.shared),  # main memory
            0,  # lock holder + 1
        )

    # -- helpers --------------------------------------------------------------

    def is_final(self, state) -> bool:
        """All threads ran to completion."""
        pcs = state[0]
        return all(
            pcs[t] >= len(self.program.threads[t]) for t in range(self.n_threads)
        )

    def outcome(self, state) -> tuple:
        """The observed register values of a final state."""
        return state[1]

    def _regs_env(self, regs) -> dict[str, object]:
        return {r: regs[i] for r, i in self.reg_index.items()}

    # -- successors ----------------------------------------------------------------

    def successors(self, state) -> Iterable[tuple[str, Hashable]]:
        pcs, regs, working, dirty, rtr, strn, main, lockh = state
        out: list[tuple[str, tuple]] = []

        for t in range(self.n_threads):
            prog = self.program.threads[t]
            pc = pcs[t]
            if pc < len(prog):
                self._program_step(state, t, prog.stmts[pc], out)
            # asynchronous implementation actions for thread t
            for v in range(self.n_vars):
                name = self.vars[v]
                # store: dirty copy -> store transit. A pending
                # prefetched read is discarded: its load would follow
                # this store in thread order, so the pairing rule would
                # demand our write precede that read — it cannot.
                if dirty[t] >> v & 1 and strn[t][v] is _ABSENT:
                    nrtr = rtr
                    if rtr[t][v] is not _ABSENT:
                        nrtr = self._put(rtr, t, v, _ABSENT)
                    ns = (
                        pcs,
                        regs,
                        working,
                        self._clear_bit(dirty, t, v),
                        nrtr,
                        self._put(strn, t, v, working[t][v]),
                        main,
                        lockh,
                    )
                    out.append((f"store(t{t},{name})", ns))
                # write: store transit -> main memory
                if strn[t][v] is not _ABSENT:
                    nmain = main[:v] + (strn[t][v],) + main[v + 1 :]
                    ns = (
                        pcs,
                        regs,
                        working,
                        dirty,
                        rtr,
                        self._put(strn, t, v, _ABSENT),
                        nmain,
                        lockh,
                    )
                    out.append((f"write(t{t},{name})", ns))
                # read: main memory -> read transit (only for variables
                # this thread will still use — see future_uses). A read
                # may not overtake the thread's own pending write: the
                # JLS pairing rule orders write_i before read_j when
                # store_i precedes load_j in thread order.
                if (
                    rtr[t][v] is _ABSENT
                    and strn[t][v] is _ABSENT
                    and pcs[t] < len(prog)
                    and self.future_uses[t][pcs[t]] >> v & 1
                ):
                    ns = (
                        pcs,
                        regs,
                        working,
                        dirty,
                        self._put(rtr, t, v, main[v]),
                        strn,
                        main,
                        lockh,
                    )
                    out.append((f"read(t{t},{name})", ns))
                # load: read transit -> working copy (not over dirty data)
                if rtr[t][v] is not _ABSENT and not (dirty[t] >> v & 1):
                    nworking = self._put(working, t, v, rtr[t][v])
                    ns = (
                        pcs,
                        regs,
                        nworking,
                        dirty,
                        self._put(rtr, t, v, _ABSENT),
                        strn,
                        main,
                        lockh,
                    )
                    out.append((f"load(t{t},{name})", ns))
        return out

    def _program_step(self, state, t: int, stmt, out) -> None:
        pcs, regs, working, dirty, rtr, strn, main, lockh = state
        npcs = pcs[:t] + (pcs[t] + 1,) + pcs[t + 1 :]
        if stmt.kind == "use":
            v = self.var_index[stmt.var]
            val = working[t][v]
            if val is _ABSENT:
                return  # must load first (rule: use after assign/load)
            r = self.reg_index[stmt.reg]
            nregs = regs[:r] + (val,) + regs[r + 1 :]
            out.append((f"use(t{t},{stmt.var},{val})", (npcs, nregs) + state[2:]))
            return
        if stmt.kind == "assign":
            v = self.var_index[stmt.var]
            if stmt.fn is not None:
                env = self._regs_env(regs)
                args = [env[s] for s in stmt.srcs]
                if any(a is _ABSENT for a in args):
                    raise ModelError(
                        f"thread {t}: assign reads unset register(s) {stmt.srcs}"
                    )
                val = stmt.fn(*args)
            else:
                val = stmt.value
            nworking = self._put(working, t, v, val)
            ndirty = dirty[:t] + (dirty[t] | (1 << v),) + dirty[t + 1 :]
            # a pending prefetched read is abandoned: its load would have
            # to follow the coming store, which the pairing rule forbids
            # (the read happened before our write)
            nrtr = rtr
            if rtr[t][v] is not _ABSENT:
                nrtr = self._put(rtr, t, v, _ABSENT)
            ns = (npcs, regs, nworking, ndirty, nrtr, strn, main, lockh)
            out.append((f"assign(t{t},{stmt.var},{val})", ns))
            return
        if stmt.kind == "compute":
            env = self._regs_env(regs)
            args = [env[s] for s in stmt.srcs]
            if any(a is _ABSENT for a in args):
                return  # operands not yet read
            val = stmt.fn(*args)
            r = self.reg_index[stmt.reg]
            nregs = regs[:r] + (val,) + regs[r + 1 :]
            out.append((f"compute(t{t},{stmt.reg},{val})", (npcs, nregs) + state[2:]))
            return
        if stmt.kind == "lock":
            # all dirty data must be flushed, and the lock must be free
            if lockh != 0 or dirty[t] != 0 or any(
                x is not _ABSENT for x in strn[t]
            ):
                return
            # working memory is emptied: subsequent uses must re-load
            empty_row = (_ABSENT,) * self.n_vars
            nworking = working[:t] + (empty_row,) + working[t + 1 :]
            nrtr = rtr[:t] + (empty_row,) + rtr[t + 1 :]
            ns = (npcs, regs, nworking, dirty, nrtr, strn, main, t + 1)
            out.append((f"lock(t{t})", ns))
            return
        if stmt.kind == "unlock":
            if lockh != t + 1 or dirty[t] != 0 or any(
                x is not _ABSENT for x in strn[t]
            ):
                return
            ns = (npcs, regs, working, dirty, rtr, strn, main, 0)
            out.append((f"unlock(t{t})", ns))
            return
        raise ModelError(f"unknown statement kind {stmt.kind!r}")

    @staticmethod
    def _put(rows, t: int, v: int, val):
        row = rows[t]
        nrow = row[:v] + (val,) + row[v + 1 :]
        return rows[:t] + (nrow,) + rows[t + 1 :]

    @staticmethod
    def _clear_bit(masks, t: int, v: int):
        return masks[:t] + (masks[t] & ~(1 << v),) + masks[t + 1 :]


def allowed_outcomes(
    program: Program, *, max_states: int | None = 2_000_000
) -> set[tuple]:
    """All register outcomes the JMM permits for ``program``."""
    machine = JMMMachine(program)
    outcomes: set[tuple] = set()
    seen = {machine.initial_state()}
    stack = [machine.initial_state()]
    while stack:
        s = stack.pop()
        if machine.is_final(s):
            outcomes.add(machine.outcome(s))
        for _label, nxt in machine.successors(s):
            if nxt not in seen:
                seen.add(nxt)
                if max_states is not None and len(seen) > max_states:
                    raise ModelError(
                        f"JMM outcome enumeration exceeded {max_states} states"
                    )
                stack.append(nxt)
    return outcomes
