"""Small multithreaded programs for memory-model analysis.

A :class:`Program` is a set of straight-line thread programs over shared
variables and thread-local registers — the standard litmus-test shape.
Statements:

* ``assign(var, value)`` / ``assign(var, fn, regs...)`` — write a shared
  variable (a constant, or a function of registers);
* ``use(var, reg)`` — read a shared variable into a register;
* ``lock()`` / ``unlock()`` — the synchronisation actions (one global
  lock object, which is all litmus tests need);
* ``compute(reg, fn, regs...)`` — register-only computation.

The same programs run on the abstract JMM machine and on the DSM
runtime simulator, which is what makes the conformance check of
:mod:`repro.jmm.litmus` possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ModelError


@dataclass(frozen=True)
class Stmt:
    """A single statement."""

    kind: str  # "assign" | "use" | "lock" | "unlock" | "compute"
    var: str | None = None
    reg: str | None = None
    fn: Callable | None = None
    srcs: tuple[str, ...] = ()
    value: object = None

    def __str__(self) -> str:
        if self.kind == "assign":
            rhs = f"{self.fn.__name__}({','.join(self.srcs)})" if self.fn else repr(self.value)
            return f"{self.var} := {rhs}"
        if self.kind == "use":
            return f"{self.reg} := {self.var}"
        if self.kind == "compute":
            return f"{self.reg} := {self.fn.__name__}({','.join(self.srcs)})"
        return self.kind


def assign(var: str, value_or_fn, *srcs: str) -> Stmt:
    """Write ``var``; either ``assign('x', 1)`` or
    ``assign('x', fn, 'r1', 'r2')``."""
    if callable(value_or_fn):
        return Stmt("assign", var=var, fn=value_or_fn, srcs=srcs)
    if srcs:
        raise ModelError("constant assign takes no source registers")
    return Stmt("assign", var=var, value=value_or_fn)


def use(var: str, reg: str) -> Stmt:
    """Read ``var`` into register ``reg``."""
    return Stmt("use", var=var, reg=reg)


def lock() -> Stmt:
    """Acquire the (single) lock object — a synchronisation point."""
    return Stmt("lock")


def unlock() -> Stmt:
    """Release the lock — a synchronisation point."""
    return Stmt("unlock")


def compute(reg: str, fn: Callable, *srcs: str) -> Stmt:
    """Register computation ``reg := fn(srcs...)``."""
    return Stmt("compute", reg=reg, fn=fn, srcs=srcs)


@dataclass(frozen=True)
class ThreadProgram:
    """One thread's straight-line code."""

    stmts: tuple[Stmt, ...]

    def __len__(self) -> int:
        return len(self.stmts)


@dataclass(frozen=True)
class Program:
    """A complete litmus program.

    Attributes
    ----------
    threads:
        The thread programs.
    shared:
        Shared variable names with initial values.
    registers:
        Observed registers: the *outcome* of a run is the tuple of their
        final values, in this order, concatenated across threads.
    """

    threads: tuple[ThreadProgram, ...]
    shared: tuple[tuple[str, int], ...]
    registers: tuple[str, ...] = field(default=())

    def __post_init__(self):
        names = {v for v, _ in self.shared}
        for ti, tp in enumerate(self.threads):
            balance = 0
            for s in tp.stmts:
                if s.kind in ("assign", "use") and s.var not in names:
                    raise ModelError(
                        f"thread {ti}: unknown shared variable {s.var!r}"
                    )
                if s.kind == "lock":
                    balance += 1
                elif s.kind == "unlock":
                    balance -= 1
                    if balance < 0:
                        raise ModelError(f"thread {ti}: unlock without lock")
            if balance != 0:
                raise ModelError(f"thread {ti}: unbalanced lock/unlock")

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def shared_names(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.shared)


def make_program(
    threads: list[list[Stmt]],
    shared: dict[str, int],
    registers: list[str] | None = None,
) -> Program:
    """Convenience constructor.

    When ``registers`` is omitted, every register read anywhere is
    observed, in thread-then-program order.
    """
    regs: list[str] = []
    if registers is None:
        for tp in threads:
            for s in tp:
                if s.kind in ("use", "compute") and s.reg not in regs:
                    regs.append(s.reg)
    else:
        regs = list(registers)
    return Program(
        threads=tuple(ThreadProgram(tuple(tp)) for tp in threads),
        shared=tuple(sorted(shared.items())),
        registers=tuple(regs),
    )
