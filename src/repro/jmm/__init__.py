"""Java Memory Model machinery.

The paper's Section 3 describes the (original, JLS chapter 17) Java
Memory Model: per-thread *working memories* caching a shared *main
memory*, with eight actions — ``use``, ``assign``, ``lock``, ``unlock``
invoked by threads and ``load``, ``store``, ``read``, ``write`` invoked
by the implementation under the chapter's ordering constraints. The
paper's stated future work is "verifying whether the cache coherence
protocol implements the JMM".

This subpackage provides both sides of that question:

* :mod:`repro.jmm.machine` — the abstract JMM as a nondeterministic
  transition system whose reachable final states are the *allowed
  outcomes* of a small program;
* :mod:`repro.jmm.dsm` — a value-level simulator of the Jackal runtime
  (regions with object and twin data, flush lists, diffing, home-based
  multiple-writer merging) whose outcomes can be enumerated the same
  way;
* :mod:`repro.jmm.litmus` — classic litmus programs and the conformance
  check: every outcome the DSM runtime produces must be allowed by the
  JMM.
"""

from repro.jmm.program import Program, ThreadProgram, assign, use, lock, unlock, compute
from repro.jmm.machine import JMMMachine, allowed_outcomes
from repro.jmm.dsm import DSMMachine, dsm_outcomes
from repro.jmm.litmus import (
    LITMUS_TESTS,
    LitmusTest,
    store_buffering,
    message_passing,
    message_passing_sync,
    coherence_single_var,
    dekker_sync,
    false_sharing,
    read_own_write,
    two_plus_two_w,
    corr_same_processor,
    run_conformance,
)

__all__ = [
    "Program",
    "ThreadProgram",
    "assign",
    "use",
    "lock",
    "unlock",
    "compute",
    "JMMMachine",
    "allowed_outcomes",
    "DSMMachine",
    "dsm_outcomes",
    "LITMUS_TESTS",
    "LitmusTest",
    "store_buffering",
    "message_passing",
    "message_passing_sync",
    "coherence_single_var",
    "dekker_sync",
    "false_sharing",
    "read_own_write",
    "two_plus_two_w",
    "corr_same_processor",
    "run_conformance",
]
