"""repro — reproduction of *Model Checking a Cache Coherence Protocol
for a Java DSM Implementation* (Pang, Fokkink, Hofman, Veldema;
IPPS 2003).

The package rebuilds the paper's entire toolchain and subject:

* :mod:`repro.algebra` — a muCRL-style process algebra with data,
  parallel composition, encapsulation and hiding;
* :mod:`repro.lts` — explicit-state LTS generation (serial, bitstate,
  distributed), reductions and the ``.aut`` interchange format;
* :mod:`repro.mucalc` — a regular alternation-free mu-calculus model
  checker (the CADP *Evaluator* stand-in);
* :mod:`repro.jackal` — the Jackal DSM cache coherence protocol model,
  its buggy and fixed variants, and the paper's four requirements;
* :mod:`repro.jmm` — an abstract Java Memory Model machine plus a
  value-level DSM simulator (the paper's stated future work);
* :mod:`repro.analysis` — trace explanation and experiment reporting.

Quickstart::

    from repro.jackal import JackalModel, Config, ProtocolVariant
    from repro.jackal.requirements import check_requirement_1

    model = JackalModel(Config(n_processors=2, threads_per_processor=(1, 1)),
                        ProtocolVariant.fixed())
    report = check_requirement_1(model)
    assert report.holds
"""

from repro.errors import (
    ReproError,
    SpecificationError,
    ExplorationLimitError,
    FormulaSyntaxError,
    FormulaSemanticsError,
    ModelError,
    TraceError,
    AutFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SpecificationError",
    "ExplorationLimitError",
    "FormulaSyntaxError",
    "FormulaSemanticsError",
    "ModelError",
    "TraceError",
    "AutFormatError",
    "__version__",
]
