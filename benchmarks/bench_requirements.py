"""Experiments R3.1/R3.2/R4 — the paper's requirement formulas verbatim.

Checks the exact regular alternation-free mu-calculus formulas of
Sections 5.4.3 and 5.4.4 (parsed from the paper's concrete syntax) on
configurations 1 and 2 of the fixed protocol, reproducing the "Req.
checked: 1, 2, 3, 4" entries of Table 8.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.jackal.requirements import build_lts
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula

FIXED = ProtocolVariant.fixed()

F_31 = "[T*.c_home] F"
F_32 = (
    "<T*> (<c_copy>T /\\ <lock_empty>T /\\ <homequeue_empty>T"
    " /\\ <remotequeue_empty>T)"
)


def _f4(tid: int) -> list[str]:
    return [
        f"[T*.write(t{tid})] mu X. (<T>T /\\ [not writeover(t{tid})] X)",
        f"[T*.flush(t{tid})] mu X. (<T>T /\\ [not flushover(t{tid})] X)",
    ]


def _check_config(config, n_threads):
    _m, probe_lts = build_lts(config, FIXED, probes=True)
    _m, plain_lts = build_lts(config, FIXED, probes=False)
    rows = []
    rows.append({
        "formula": F_31, "expected": True,
        "verdict": holds(probe_lts, parse_formula(F_31)),
    })
    rows.append({
        "formula": F_32 + "  (must be false)", "expected": False,
        "verdict": holds(probe_lts, parse_formula(F_32)),
    })
    for t in range(n_threads):
        for f in _f4(t):
            rows.append({
                "formula": f, "expected": True,
                "verdict": holds(plain_lts, parse_formula(f)),
            })
    return rows, probe_lts.n_states


@pytest.mark.benchmark(group="requirements")
def test_paper_formulas_config_1(once):
    rows, states = once(_check_config, CONFIG_1, 2)
    assert all(r["verdict"] == r["expected"] for r in rows)
    print()
    print(Table(f"paper formulas on config 1 ({states} states)",
                ["formula", "expected", "verdict"], rows).render())


@pytest.mark.benchmark(group="requirements")
def test_paper_formulas_config_2(once):
    rows, _states = once(_check_config, CONFIG_2, 3)
    assert all(r["verdict"] == r["expected"] for r in rows)


@pytest.mark.benchmark(group="requirements")
def test_fair_liveness_on_cyclic_model(once):
    # the muCRL threads recurse forever; on the cyclic model we check
    # the fair reformulation (see DESIGN.md item 7)
    from repro.jackal.requirements import check_requirement_4

    cfg = dataclasses.replace(CONFIG_1, rounds=None)
    rep = once(check_requirement_4, cfg, FIXED)
    assert rep.holds
    assert "fair" in rep.requirement
