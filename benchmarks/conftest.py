"""Benchmark harness configuration.

Every benchmark regenerates one experiment of the paper (see DESIGN.md's
per-experiment index) and *prints* the rows it reproduces, so running

    pytest benchmarks/ --benchmark-only -s

yields the reproduction report alongside the timings. State-space
generation is expensive, so benchmarks use ``benchmark.pedantic`` with a
single round instead of pytest-benchmark's auto-calibration.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one measured execution."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
