"""Experiment A1 — ablation: automatic home node migration.

Section 4.4 of the paper: migration exists to cut synchronisation
traffic, and both historical errors live in its race windows. This
ablation quantifies what migration costs in verification terms: state
space size with and without migration, and the disappearance of both
bugs when it is disabled.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, CONFIG_2, JackalModel, ProtocolVariant
from repro.jackal.requirements import (
    check_requirement_1,
    check_requirement_3_2,
)
from repro.lts.explore import explore

CYCLIC_C1 = dataclasses.replace(CONFIG_1, rounds=None)


@pytest.mark.benchmark(group="ablation-migration")
def test_state_space_with_and_without_migration(once):
    def run():
        rows = []
        for cfg_name, cfg in (("C1", CONFIG_1), ("C2", CONFIG_2)):
            c = dataclasses.replace(cfg, rounds=1, with_probes=False)
            for variant, tag in (
                (ProtocolVariant.fixed(), "migration on"),
                (ProtocolVariant.no_migration(), "migration off"),
            ):
                lts = explore(JackalModel(c, variant))
                rows.append({
                    "config": cfg_name, "variant": tag,
                    "states": lts.n_states, "transitions": lts.n_transitions,
                })
        return rows

    rows = once(run)
    by_key = {(r["config"], r["variant"]): r["states"] for r in rows}
    assert by_key[("C1", "migration off")] < by_key[("C1", "migration on")]
    assert by_key[("C2", "migration off")] < by_key[("C2", "migration on")]
    print()
    print(Table("state space, migration on vs off",
                ["config", "variant", "states", "transitions"], rows).render())


@pytest.mark.benchmark(group="ablation-migration")
def test_error1_needs_migration(once):
    # even with the Error-1 code path (no fault-lock recheck), disabling
    # migration makes the deadlock unreachable
    variant = ProtocolVariant(
        fault_lock_recheck=False,
        sponmigrate_informs_threads=True,
        home_migration=False,
    )
    rep = once(check_requirement_1, CYCLIC_C1, variant)
    assert rep.holds
    print(f"\nE1 path without migration: {rep.summary()}")


@pytest.mark.benchmark(group="ablation-migration")
def test_error2_needs_migration(once):
    variant = ProtocolVariant(
        fault_lock_recheck=True,
        sponmigrate_informs_threads=False,
        home_migration=False,
    )
    rep = once(check_requirement_3_2, CONFIG_2, variant)
    assert rep.holds
    print(f"\nE2 path without migration: {rep.summary()}")


@pytest.mark.benchmark(group="ablation-migration")
def test_migration_traffic_mix(once):
    from repro.jackal.statistics import protocol_statistics

    def run():
        lts = explore(
            JackalModel(
                dataclasses.replace(CONFIG_2, rounds=1, with_probes=False),
                ProtocolVariant.fixed(),
            )
        )
        return protocol_statistics(lts)

    stats = once(run)
    assert stats.migrations > 0
    assert stats.count("bug_path") == 0
    print()
    print(Table("traffic mix, config 2 (fixed)",
                ["category", "transitions", "share"],
                stats.as_rows()).render())
