"""Experiment T8 — the paper's Table 8.

Regenerates, per configuration, the row (states, transitions,
requirements checked) and compares the shape against the paper's
numbers: sizes must grow by orders of magnitude from configuration 1 to
configuration 3, and configuration 3 is checked for requirements 1-2
only (in the paper its LTS was too large for the mu-calculus checker;
we keep the same protocol for comparability).

Paper's row values: C1 = 65,234 / 360,162 (reqs 1-4);
C2 = 5,424,848 / 40,476,069 (reqs 1-4); C3 = 36,371,052 / 290,181,444
(reqs 1-2).
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, CONFIG_2, CONFIG_3, ProtocolVariant
from repro.jackal.requirements import check_all_requirements

ROUNDS = 2
PAPER_ROWS = {
    "1": (65_234, 360_162, "1, 2, 3, 4"),
    "2": (5_424_848, 40_476_069, "1, 2, 3, 4"),
    "3": (36_371_052, 290_181_444, "1, 2"),
}

_results: dict[str, dict] = {}


def _run(name, cfg, skip):
    cfg = dataclasses.replace(cfg, rounds=ROUNDS)
    res = check_all_requirements(cfg, ProtocolVariant.fixed(), skip=skip)
    row = {
        "config": name,
        "states": max(r.lts_states for r in res.values()),
        "transitions": max(r.lts_transitions for r in res.values()),
        "req_checked": ", ".join(sorted(res)),
        "all_hold": all(r.holds for r in res.values()),
    }
    _results[name] = row
    return row


@pytest.mark.benchmark(group="table8")
def test_table8_config_1(once):
    row = once(_run, "1", CONFIG_1, ())
    assert row["all_hold"]
    assert row["req_checked"] == "1, 2, 3.1, 3.2, 4"


@pytest.mark.benchmark(group="table8")
def test_table8_config_2(once):
    row = once(_run, "2", CONFIG_2, ())
    assert row["all_hold"]


@pytest.mark.benchmark(group="table8")
def test_table8_config_3(once):
    # requirements 1-2 only, exactly as in the paper
    row = once(_run, "3", CONFIG_3, ("3.1", "3.2", "4"))
    assert row["all_hold"]
    assert row["req_checked"] == "1, 2"


@pytest.mark.benchmark(group="table8")
def test_table8_shape_matches_paper(once):
    """The qualitative claims of Table 8 hold for our model too."""

    def check_shape():
        for name, cfg, skip in [
            ("1", CONFIG_1, ()),
            ("2", CONFIG_2, ()),
            ("3", CONFIG_3, ("3.1", "3.2", "4")),
        ]:
            if name not in _results:
                _run(name, cfg, skip)
        return _results

    rows = once(check_shape)
    # monotone growth C1 < C2 < C3, by a large factor each step, as in
    # the paper (65k -> 5.4M -> 36M)
    s1, s2, s3 = (rows[k]["states"] for k in ("1", "2", "3"))
    assert s1 * 5 < s2, (s1, s2)
    assert s2 < s3 * 5 and s2 * 1.5 < s3, (s2, s3)
    table = Table(
        "Table 8 (paper vs. reproduction)",
        ["config", "states", "transitions", "req_checked",
         "paper_states", "paper_transitions", "paper_req"],
    )
    for k in ("1", "2", "3"):
        ps, pt, pr = PAPER_ROWS[k]
        table.add(**rows[k] | {"paper_states": ps, "paper_transitions": pt,
                               "paper_req": pr})
    print()
    print(table.render())
