"""Experiment E-matrix — the full variant x requirement causal story.

The paper's narrative assigns each historical error to the requirement
that caught it: the deadlock (Error 1) fell to Requirement 1, the lost
home (Error 2) to Requirement 3.2, and the fixed protocol passes
everything. This benchmark regenerates the complete matrix — all four
fault-injection combinations against all requirements — and asserts the
diagonal structure: each bug is detected by *its* requirement and by no
coherence requirement it shouldn't trip.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_2, ProtocolVariant
from repro.jackal.requirements import check_all_requirements

#: config 2 with bounded rounds keeps all four variants tractable; two
#: rounds are needed for the Error-1 race
CFG = dataclasses.replace(CONFIG_2, rounds=2)

VARIANTS = [
    ProtocolVariant.fixed(),
    ProtocolVariant.error1(),
    ProtocolVariant.error2(),
    ProtocolVariant.buggy(),
]


@pytest.mark.benchmark(group="error-matrix")
def test_error_matrix(once):
    def run():
        rows = []
        for variant in VARIANTS:
            res = check_all_requirements(CFG, variant)
            rows.append(
                {"variant": variant.describe()}
                | {k: r.holds for k, r in sorted(res.items())}
            )
        return rows

    rows = once(run)
    by = {r["variant"]: r for r in rows}

    # the fixed protocol passes everything
    assert all(v for k, v in by["fixed"].items() if k != "variant")
    # Error 1 is a deadlock: requirement 1 catches it ...
    assert not by["error1"]["1"]
    # ... while the coherence requirements stay green (it wedges, it
    # does not corrupt the home administration)
    assert by["error1"]["3.1"] and by["error1"]["3.2"]
    # Error 2 is the lost home: requirement 3.2 catches it ...
    assert not by["error2"]["3.2"]
    # ... without ever creating two homes
    assert by["error2"]["3.1"]
    # ... and liveness collapses with it (the flush storm)
    assert not by["error2"]["4"]
    # the original implementation trips both detectors
    assert not by["error1+error2"]["1"]
    assert not by["error1+error2"]["3.2"]
    # nothing ever violates 3.1: neither bug duplicates the home
    assert all(r["3.1"] for r in rows)

    print()
    print(Table(
        "fault-injection matrix (config 2, rounds=2): requirement verdicts",
        ["variant", "1", "2", "3.1", "3.2", "4"],
        rows,
    ).render())
