"""Experiment A2 — generation machinery ablation.

The paper leaned on the muCRL toolset's distributed LTS generation (an
eight-node CWI cluster) and mentions its state-bit hashing capability.
This benchmark compares the three generation strategies this library
provides on one protocol workload: exact serial BFS, hash-partitioned
multi-process generation, and bitstate (supertrace) hashing.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_2, JackalModel, ProtocolVariant
from repro.lts.bitstate import bitstate_explore
from repro.lts.distributed import distributed_explore
from repro.lts.explore import ExplorationStats, explore

CFG = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)


def _model():
    return JackalModel(CFG, ProtocolVariant.fixed())


@pytest.mark.benchmark(group="generation")
def test_serial_generation(benchmark):
    st = ExplorationStats()
    benchmark.pedantic(
        lambda: explore(_model(), stats=st), rounds=3, iterations=1
    )
    assert st.states > 1000
    print(f"\nserial: {st.states} states at {st.states_per_second():,.0f} states/s")


@pytest.mark.benchmark(group="generation")
def test_partitioned_generation_inline(benchmark):
    _lts, stats = benchmark.pedantic(
        lambda: distributed_explore(_model(), n_workers=4, backend="inline"),
        rounds=3,
        iterations=1,
    )
    exact = explore(_model())
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.imbalance() < 1.5
    print(f"\npartitioned(4, inline): imbalance {stats.imbalance():.3f}")


@pytest.mark.benchmark(group="generation")
def test_partitioned_generation_processes(once):
    _lts, stats = once(
        distributed_explore, _model(), n_workers=4, backend="process"
    )
    exact = explore(_model())
    assert stats.states == exact.n_states
    print(
        "\npartitioned(4, process): "
        f"{stats.states} states, {stats.levels} BFS levels, "
        f"imbalance {stats.imbalance():.3f}"
    )


@pytest.mark.benchmark(group="generation")
def test_bitstate_generation(benchmark):
    res = benchmark.pedantic(
        lambda: bitstate_explore(_model(), table_bytes=1 << 20),
        rounds=3,
        iterations=1,
    )
    exact = explore(_model())
    coverage = res.visited / exact.n_states
    assert coverage > 0.99  # 1 MiB table is ample for this workload
    assert res.fill_ratio < 0.05
    print(f"\nbitstate: coverage {coverage:.2%}, fill {res.fill_ratio:.4f}")


@pytest.mark.benchmark(group="generation")
def test_bitstate_under_memory_pressure(once):
    # a deliberately tiny table: the sweep must degrade gracefully
    # (fewer states, never a crash) — the supertrace trade-off
    res = once(bitstate_explore, _model(), table_bytes=512)
    exact = explore(_model())
    assert res.visited <= exact.n_states
    print(
        f"\nbitstate(512B): {res.visited}/{exact.n_states} states "
        f"({res.visited / exact.n_states:.1%}), fill {res.fill_ratio:.2f}"
    )
