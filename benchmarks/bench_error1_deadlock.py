"""Experiment E1 — Section 5.4.1: the fault-lock/migration deadlock.

The paper: "One deadlock found by the analyzers, on a configuration of
two processors each containing one thread, was a real problem in the
implementation. ... After fixing this problem as proposed, no more
deadlocks were found." Shortest error traces exceeded 100 transitions
in the paper's (finer-grained) model.

Rows regenerated: deadlock verdict for the buggy and fixed protocol on
configuration 1 with cyclic threads, plus the shortest-trace length.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, ProtocolVariant
from repro.jackal.requirements import check_requirement_1

CYCLIC_C1 = dataclasses.replace(CONFIG_1, rounds=None)


@pytest.mark.benchmark(group="error1")
def test_error1_deadlock_in_buggy_protocol(once):
    rep = once(check_requirement_1, CYCLIC_C1, ProtocolVariant.error1())
    assert not rep.holds
    assert rep.trace is not None
    assert any(l.startswith("stale_remote_wait") for l in rep.trace.labels)
    print()
    print(Table("E1: original implementation (config 1, cyclic threads)",
                ["verdict", "deadlocks", "trace_len", "states"],
                [{
                    "verdict": "VIOLATED (paper: deadlock found)",
                    "deadlocks": rep.detail.split(" ")[0],
                    "trace_len": len(rep.trace),
                    "states": rep.lts_states,
                }]).render())


@pytest.mark.benchmark(group="error1")
def test_error1_fixed_protocol_clean(once):
    rep = once(check_requirement_1, CYCLIC_C1, ProtocolVariant.fixed())
    assert rep.holds
    print()
    print(f"E1 fixed: {rep.summary()} (paper: no more deadlocks found)")


@pytest.mark.benchmark(group="error1")
def test_error1_bounded_rounds_variant(once):
    # the bounded-round model exposes the same wedge as an improper
    # terminal state
    cfg = dataclasses.replace(CONFIG_1, rounds=2)
    rep = once(check_requirement_1, cfg, ProtocolVariant.error1())
    assert not rep.holds


@pytest.mark.benchmark(group="error1")
def test_error1_trace_is_long_scenario(once):
    rep = once(check_requirement_1, CYCLIC_C1, ProtocolVariant.error1())
    # paper: >100 transitions at muCRL granularity; our model is
    # coarser but the scenario still takes dozens of steps
    assert len(rep.trace) >= 30
