"""Experiment A3 — behavioural reduction on protocol LTSs.

The paper's pipeline handed generated LTSs to CADP, where bisimulation
reduction is the standard preprocessing step ("more advanced tools are
needed to generate, store and reduce LTSs", Section 6). This benchmark
measures how much strong and branching bisimulation compress the
protocol's LTSs once uninteresting actions are hidden.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, JackalModel, ProtocolVariant
from repro.jackal.actions import Labels
from repro.lts.explore import explore
from repro.lts.reduction import minimize_branching, minimize_strong

CFG = dataclasses.replace(CONFIG_1, rounds=1, with_probes=False)

#: the observable alphabet of the requirements: thread-level events
_KEEP_PREFIXES = ("write(", "writeover(", "flush(", "flushover(")


def _protocol_lts():
    return explore(JackalModel(CFG, ProtocolVariant.fixed()))


def _hidden(lts):
    hide = [
        l for l in lts.labels if not l.startswith(_KEEP_PREFIXES)
    ]
    return lts.hidden(hide)


@pytest.mark.benchmark(group="reduction")
def test_strong_minimisation(once):
    lts = _protocol_lts()
    reduced = once(minimize_strong, lts)
    assert reduced.n_states <= lts.n_states
    print(f"\nstrong: {lts.n_states} -> {reduced.n_states} states")


@pytest.mark.benchmark(group="reduction")
def test_branching_minimisation_after_hiding(once):
    lts = _hidden(_protocol_lts())
    reduced = once(minimize_branching, lts)
    # hiding the protocol machinery leaves only thread-level behaviour;
    # branching reduction must compress dramatically
    assert reduced.n_states < lts.n_states / 5
    print(
        f"\nbranching (thread alphabet): {lts.n_states} -> "
        f"{reduced.n_states} states, {reduced.n_transitions} transitions"
    )


@pytest.mark.benchmark(group="reduction")
def test_reduction_preserves_thread_events(once):
    lts = _hidden(_protocol_lts())

    def run():
        return minimize_branching(lts)

    reduced = once(run)
    visible = {l for l in reduced.labels if l != "tau"}
    expected = set()
    for t in range(CFG.n_threads):
        expected |= {
            Labels.write(t), Labels.writeover(t),
            Labels.flush(t), Labels.flushover(t),
        }
    assert visible == expected


@pytest.mark.benchmark(group="reduction")
def test_reduction_table(once):
    def run():
        rows = []
        lts = _protocol_lts()
        strong = minimize_strong(lts)
        hidden = _hidden(lts)
        branching = minimize_branching(hidden)
        rows.append({"step": "generated", "states": lts.n_states,
                     "transitions": lts.n_transitions})
        rows.append({"step": "strong bisim", "states": strong.n_states,
                     "transitions": strong.n_transitions})
        rows.append({"step": "hide protocol actions + branching bisim",
                     "states": branching.n_states,
                     "transitions": branching.n_transitions})
        return rows

    rows = once(run)
    assert rows[-1]["states"] < rows[0]["states"]
    print()
    print(Table("reduction pipeline on config 1", ["step", "states",
                "transitions"], rows).render())
