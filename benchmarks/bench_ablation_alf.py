"""Experiment A4 — extension: adaptive lazy flushing (paper §4.5).

The paper lists adaptive lazy flushing among Jackal's runtime
optimisations but deliberately leaves it out of its model. We implement
it as a variant and measure the paper's motivating claim at the model
level: for regions accessed by a single processor, the protocol-lock
and invalidation machinery disappears — while all four requirements
keep holding.
"""

import dataclasses

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, Config, JackalModel, ProtocolVariant
from repro.jackal.requirements import check_all_requirements
from repro.jackal.statistics import protocol_statistics
from repro.lts.explore import explore

ALF = ProtocolVariant.alf()


@pytest.mark.benchmark(group="ablation-alf")
def test_alf_preserves_requirements(once):
    def run():
        cfg = dataclasses.replace(CONFIG_1, rounds=2)
        return check_all_requirements(cfg, ALF)

    res = once(run)
    assert all(r.holds for r in res.values())
    print("\nALF variant: all requirements hold on config 1 (rounds=2)")


@pytest.mark.benchmark(group="ablation-alf")
def test_alf_removes_lock_traffic_for_exclusive_regions(once):
    def run():
        rows = []
        cfg = Config(threads_per_processor=(2,), rounds=2, with_probes=False)
        for variant, tag in ((ProtocolVariant.fixed(), "locked"),
                             (ALF, "adaptive lazy flushing")):
            lts = explore(JackalModel(cfg, variant))
            stats = protocol_statistics(lts)
            rows.append({
                "variant": tag,
                "states": lts.n_states,
                "lock_grants": stats.count("lock_grant"),
                "queue_grants": stats.count("queue_grant"),
            })
        return rows

    rows = once(run)
    locked, alf = rows
    assert alf["lock_grants"] == 0
    assert locked["lock_grants"] > 0
    assert alf["states"] < locked["states"]
    print()
    print(Table("single-processor workload (2 threads, 2 rounds)",
                ["variant", "states", "lock_grants", "queue_grants"],
                rows).render())


@pytest.mark.benchmark(group="ablation-alf")
def test_alf_state_space_on_shared_workload(once):
    def run():
        cfg = dataclasses.replace(CONFIG_1, rounds=2, with_probes=False)
        return (
            explore(JackalModel(cfg, ProtocolVariant.fixed())).n_states,
            explore(JackalModel(cfg, ALF)).n_states,
        )

    plain, alf = once(run)
    print(f"\nshared workload states: locked={plain}, ALF={alf}")
    # with real sharing the fast path rarely applies; sizes stay close
    assert alf < plain * 2
