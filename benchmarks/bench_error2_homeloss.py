"""Experiment E2 — Section 5.4.3: the lost-home race (Requirement 3.2).

The paper: "A second error in the implementation of the protocol was
found while model checking this property on a configuration of two
processors, with two threads running on one processor and a third
thread on the other. ... In the resulting state of the protocol,
neither of the two processors is the home of the region. ... After
fixing this problem as proposed, property 3.2 was successfully model
checked."

Rows regenerated: the 3.2 verdict for the pre-fix and fixed protocols on
configuration 2, the witness length, and the 3.1 verdict (which must
stay green — the bug loses the home, it does not duplicate it).
"""

import pytest

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_2, ProtocolVariant
from repro.jackal.requirements import (
    check_requirement_3_1,
    check_requirement_3_2,
)


@pytest.mark.benchmark(group="error2")
def test_error2_violation_found(once):
    rep = once(check_requirement_3_2, CONFIG_2, ProtocolVariant.error2())
    assert not rep.holds
    assert rep.trace is not None
    print()
    print(Table("E2: pre-fix protocol (config 2)",
                ["property", "verdict", "witness_len", "states"],
                [{
                    "property": "3.2 stable-state copies",
                    "verdict": "VIOLATED (paper: error found)",
                    "witness_len": len(rep.trace),
                    "states": rep.lts_states,
                }]).render())


@pytest.mark.benchmark(group="error2")
def test_error2_fixed_protocol_clean(once):
    rep = once(check_requirement_3_2, CONFIG_2, ProtocolVariant.fixed())
    assert rep.holds
    print()
    print(f"E2 fixed: {rep.summary()} (paper: successfully model checked)")


@pytest.mark.benchmark(group="error2")
def test_error2_one_home_property_unaffected(once):
    rep = once(check_requirement_3_1, CONFIG_2, ProtocolVariant.error2())
    assert rep.holds


@pytest.mark.benchmark(group="error2")
def test_error2_witness_shows_the_race(once):
    rep = once(check_requirement_3_2, CONFIG_2, ProtocolVariant.error2())
    labels = rep.trace.labels
    mig = min(i for i, l in enumerate(labels) if l.startswith("recv_sponmigrate"))
    sig = max(i for i, l in enumerate(labels) if l.startswith("signal"))
    assert mig < sig  # sponmigrate processed before the stale Data Return
