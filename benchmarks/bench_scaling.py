"""Experiment T8-cfg — Section 5.5's scaling observation.

"Due to the complexity of this protocol, the size of the LTS grows very
rapidly with respect to the number of threads and processors."

Regenerates the state/transition growth series along both axes
(processors with one thread each; threads on a fixed two-processor
system) and asserts the super-linear growth the paper reports.

Also benchmarks the exploration engine against the seed serial
explorer (``test_engine_speedup``): the engine must clear 2x the
serial states/sec on the same configuration while producing the
identical LTS, and the full cross-backend report is written to
``BENCH_explore.json``.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.analysis.reporting import Table
from repro.jackal import Config, JackalModel, ProtocolVariant
from repro.lts.bench import bench_explore, format_bench
from repro.lts.engine import explore_fast
from repro.lts.explore import ExplorationStats, explore


def _measure(threads_per_processor):
    cfg = Config(
        threads_per_processor=threads_per_processor,
        rounds=1,
        with_probes=False,
    )
    st = ExplorationStats()
    explore(JackalModel(cfg, ProtocolVariant.fixed()), stats=st)
    return {
        "topology": cfg.describe(),
        "states": st.states,
        "transitions": st.transitions,
        "seconds": round(st.seconds, 2),
    }


@pytest.mark.benchmark(group="scaling")
def test_growth_in_processors(once):
    def run():
        return [_measure((1,) * p) for p in (1, 2, 3, 4)]

    rows = once(run)
    states = [r["states"] for r in rows]
    # rapid growth: each extra processor multiplies the state count
    assert states[1] > 4 * states[0]
    assert states[2] > 4 * states[1]
    assert states[3] > 4 * states[2]
    print()
    print(Table("growth in processors (1 thread each, 1 round)",
                ["topology", "states", "transitions", "seconds"], rows).render())


@pytest.mark.benchmark(group="scaling")
def test_growth_in_threads(once):
    def run():
        return [
            _measure(tpp) for tpp in ((1, 1), (2, 1), (2, 2), (3, 2))
        ]

    rows = once(run)
    states = [r["states"] for r in rows]
    assert states[1] > 3 * states[0]
    assert states[2] > 3 * states[1]
    assert states[3] > 2 * states[2]
    print()
    print(Table("growth in threads (2 processors, 1 round)",
                ["topology", "states", "transitions", "seconds"], rows).render())


@pytest.mark.benchmark(group="scaling")
def test_engine_speedup(once):
    """The exploration engine clears 2x the seed serial explorer.

    Timings are min-of-3 with a warm-up pass on both sides, the
    standard guard against scheduler noise; the serial and engine runs
    are interleaved so background load hits both equally. Counts are
    cross-checked by :func:`bench_explore` (it raises on any backend
    disagreement), and the full report lands in ``BENCH_explore.json``.
    """
    cfg = Config(
        threads_per_processor=(1, 1, 1), rounds=1, with_probes=False
    )
    model = JackalModel(cfg, ProtocolVariant.fixed())

    def run():
        explore(model)  # warm both paths before timing
        explore_fast(model)
        return bench_explore(
            model,
            backends=("serial", "engine", "engine-packed", "distributed"),
            n_workers=2,
            repeats=3,
        )

    report = once(run)
    report["config"] = cfg.describe()
    out = pathlib.Path("BENCH_explore.json")
    out.write_text(json.dumps(report, indent=2))
    print()
    print(format_bench(report))
    print(f"written: {out.resolve()}")
    assert report["system"]["states"] == 9312
    assert report["system"]["transitions"] == 25713
    assert report["speedup"]["engine"] >= 2.0


@pytest.mark.benchmark(group="scaling")
def test_growth_in_rounds(once):
    def run():
        rows = []
        for rounds in (1, 2, 3):
            cfg = Config(threads_per_processor=(1, 1), rounds=rounds,
                         with_probes=False)
            st = ExplorationStats()
            explore(JackalModel(cfg, ProtocolVariant.fixed()), stats=st)
            rows.append({"rounds": rounds, "states": st.states,
                         "transitions": st.transitions})
        return rows

    rows = once(run)
    assert rows[1]["states"] > 5 * rows[0]["states"]
    print()
    print(Table("growth in rounds (config 1)",
                ["rounds", "states", "transitions"], rows).render())
