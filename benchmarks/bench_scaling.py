"""Experiment T8-cfg — Section 5.5's scaling observation.

"Due to the complexity of this protocol, the size of the LTS grows very
rapidly with respect to the number of threads and processors."

Regenerates the state/transition growth series along both axes
(processors with one thread each; threads on a fixed two-processor
system) and asserts the super-linear growth the paper reports.

Also benchmarks the exploration engine against the seed serial
explorer (``test_engine_speedup``): the engine must clear 2x the
serial states/sec on the same configuration while producing the
identical LTS, and the full cross-backend report is written to
``BENCH_explore.json``.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.analysis.reporting import Table
from repro.jackal import Config, JackalModel, ProtocolVariant
from repro.lts.bench import bench_explore, format_bench
from repro.lts.engine import explore_fast
from repro.lts.explore import ExplorationStats, explore


def _measure(threads_per_processor):
    cfg = Config(
        threads_per_processor=threads_per_processor,
        rounds=1,
        with_probes=False,
    )
    st = ExplorationStats()
    explore(JackalModel(cfg, ProtocolVariant.fixed()), stats=st)
    return {
        "topology": cfg.describe(),
        "states": st.states,
        "transitions": st.transitions,
        "seconds": round(st.seconds, 2),
    }


@pytest.mark.benchmark(group="scaling")
def test_growth_in_processors(once):
    def run():
        return [_measure((1,) * p) for p in (1, 2, 3, 4)]

    rows = once(run)
    states = [r["states"] for r in rows]
    # rapid growth: each extra processor multiplies the state count
    assert states[1] > 4 * states[0]
    assert states[2] > 4 * states[1]
    assert states[3] > 4 * states[2]
    print()
    print(Table("growth in processors (1 thread each, 1 round)",
                ["topology", "states", "transitions", "seconds"], rows).render())


@pytest.mark.benchmark(group="scaling")
def test_growth_in_threads(once):
    def run():
        return [
            _measure(tpp) for tpp in ((1, 1), (2, 1), (2, 2), (3, 2))
        ]

    rows = once(run)
    states = [r["states"] for r in rows]
    assert states[1] > 3 * states[0]
    assert states[2] > 3 * states[1]
    assert states[3] > 2 * states[2]
    print()
    print(Table("growth in threads (2 processors, 1 round)",
                ["topology", "states", "transitions", "seconds"], rows).render())


@pytest.mark.benchmark(group="scaling")
def test_engine_speedup(once):
    """The exploration engine clears 2x the seed serial explorer.

    Timings are min-of-3 with a warm-up pass on both sides, the
    standard guard against scheduler noise; the serial and engine runs
    are interleaved so background load hits both equally. Counts are
    cross-checked by :func:`bench_explore` (it raises on any backend
    disagreement), and the full report lands in ``BENCH_explore.json``.
    """
    cfg = Config(
        threads_per_processor=(1, 1, 1), rounds=1, with_probes=False
    )
    model = JackalModel(cfg, ProtocolVariant.fixed())

    def run():
        explore(model)  # warm both paths before timing
        explore_fast(model)
        return bench_explore(
            model,
            backends=("serial", "engine", "engine-packed", "distributed"),
            n_workers=2,
            repeats=3,
        )

    report = once(run)
    report["config"] = cfg.describe()
    out = pathlib.Path("BENCH_explore.json")
    out.write_text(json.dumps(report, indent=2))
    print()
    print(format_bench(report))
    print(f"written: {out.resolve()}")
    assert report["system"]["states"] == 9312
    assert report["system"]["transitions"] == 25713
    assert report["speedup"]["engine"] >= 2.0
    # the shipped BENCH_explore.json must carry memory telemetry for
    # every tier: RSS watermark plus the bounded watermark series
    for name in ("serial", "engine", "distributed"):
        row = report["backends"][name]
        assert row["max_rss_bytes"] > 0, name
        assert row["mem"]["watermarks"], name


@pytest.mark.benchmark(group="scaling")
def test_growth_in_rounds(once):
    def run():
        rows = []
        for rounds in (1, 2, 3):
            cfg = Config(threads_per_processor=(1, 1), rounds=rounds,
                         with_probes=False)
            st = ExplorationStats()
            explore(JackalModel(cfg, ProtocolVariant.fixed()), stats=st)
            rows.append({"rounds": rounds, "states": st.states,
                         "transitions": st.transitions})
        return rows

    rows = once(run)
    assert rows[1]["states"] > 5 * rows[0]["states"]
    print()
    print(Table("growth in rounds (config 1)",
                ["rounds", "states", "transitions"], rows).render())


@pytest.mark.benchmark(group="scaling")
def test_max_rss_gate(once):
    """The max-RSS regression gate trips on a deliberate regression.

    Two directions: a real bench report passes under a cap with
    generous headroom over the observed watermark, and a doctored copy
    of the same report — one backend's watermark inflated 10x, the
    mutation a real memory regression would produce — must fail the
    same cap and name the offending backend.
    """
    from repro.lts.bench import rss_gate

    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    model = JackalModel(cfg, ProtocolVariant.fixed())

    def run():
        return bench_explore(model, backends=("serial", "engine"), repeats=1)

    report = once(run)
    observed = max(
        row["max_rss_bytes"]
        for row in report["backends"].values()
        if "max_rss_bytes" in row
    )
    assert observed > 0
    cap = 4 * observed
    assert rss_gate(report, cap) == []
    doctored = json.loads(json.dumps(report))
    doctored["backends"]["engine"]["max_rss_bytes"] = 10 * observed
    assert rss_gate(doctored, cap) == ["engine"]
    with pytest.raises(ValueError):
        rss_gate(report, 0)


# -- flight-recorder overhead gate ------------------------------------------


def _baseline_engine(system):
    """Frozen copy of the engine's tight loop as it stood before the
    flight recorder landed (PR 2's ``explore_fast`` fast path,
    including the stats bookkeeping and columnar LTS adoption) — the
    un-instrumented reference the overhead gate compares against.
    """
    import gc
    from array import array

    from repro.lts.lts import LTS

    succ = getattr(system, "successors_fast", None) or system.successors
    init = system.initial_state()
    index = {init: 0}
    n = 1
    src = array("i")
    lbl = array("i")
    dst = array("i")
    src_append = src.append
    lbl_append = lbl.append
    dst_append = dst.append
    labels = []
    labels_append = labels.append
    lmap = {}
    lmap_get = lmap.get
    index_setdefault = index.setdefault
    frontier = [(0, init)]
    depth = 0
    level_sizes = [1]
    max_frontier = 1
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while frontier:
            next_frontier = []
            nf_append = next_frontier.append
            for sidx, state in frontier:
                for label, nxt in succ(state):
                    didx = index_setdefault(nxt, n)
                    if didx == n:
                        n += 1
                        nf_append((didx, nxt))
                    lid = lmap_get(label)
                    if lid is None:
                        lid = lmap[label] = len(labels)
                        labels_append(label)
                    src_append(sidx)
                    lbl_append(lid)
                    dst_append(didx)
            depth += 1
            frontier = next_frontier
            if frontier:
                level_sizes.append(len(frontier))
                if len(frontier) > max_frontier:
                    max_frontier = len(frontier)
    finally:
        if gc_was_enabled:
            gc.enable()
    out = LTS.from_columns(
        initial=0, n_states=n, src=src, lbl=lbl, dst=dst, labels=labels
    )
    out.state_meta = {}
    return out


@pytest.mark.benchmark(group="scaling")
def test_instrumentation_disabled_overhead(once):
    """Disabled instrumentation costs <= 3% on the engine's tight loop.

    The flight recorder's contract: when nothing is recording, the
    engine must run within 3% of the frozen pre-instrumentation loop
    above. Interleaved min-of-5 timings absorb scheduler noise; the
    comparison is retried up to 3 times before failing so one noisy
    round cannot flake the gate.
    """
    import math
    import time

    cfg = Config(
        threads_per_processor=(1, 1, 1), rounds=1, with_probes=False
    )
    model = JackalModel(cfg, ProtocolVariant.fixed())

    def measure():
        _baseline_engine(model)  # warm both paths before timing
        explore_fast(model)
        base = cur = math.inf
        for _ in range(5):
            t = time.perf_counter()
            _baseline_engine(model)
            base = min(base, time.perf_counter() - t)
            t = time.perf_counter()
            explore_fast(model)
            cur = min(cur, time.perf_counter() - t)
        return base, cur

    def run():
        for _attempt in range(3):
            base, cur = measure()
            if cur <= 1.03 * base:
                break
        return base, cur

    base, cur = once(run)
    # same sweep: the baseline and the engine must agree exactly
    lts = explore_fast(model)
    ref = _baseline_engine(model)
    assert (lts.n_states, lts.n_transitions) == (ref.n_states, ref.n_transitions)
    ratio = cur / base if base > 0 else 1.0
    print(f"\nbaseline {base:.3f}s  engine {cur:.3f}s  ratio {ratio:.3f}")
    assert cur <= 1.03 * base, (
        f"instrumentation-disabled engine {cur:.3f}s exceeds 3% over the "
        f"un-instrumented baseline {base:.3f}s (ratio {ratio:.3f})"
    )
