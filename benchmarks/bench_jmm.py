"""Experiment F (extension) — JMM conformance of the DSM runtime.

The paper's future work: "verifying whether the cache coherence
protocol implements the JMM in [9, Chapter 17]". Benchmarks the litmus
conformance sweep (abstract-JMM outcome enumeration vs the simulated
Jackal runtime) and asserts the headline facts per test.
"""

import pytest

from repro.analysis.reporting import Table
from repro.jmm import LITMUS_TESTS, run_conformance


@pytest.mark.benchmark(group="jmm")
def test_full_conformance_sweep(once):
    def run():
        return [run_conformance(t) for t in LITMUS_TESTS()]

    results = once(run)
    assert all(r.conforms for r in results)
    print()
    print(Table(
        "JMM conformance sweep",
        ["test", "jmm", "dsm", "conforms"],
        [{"test": r.test, "jmm": len(r.jmm_outcomes),
          "dsm": len(r.dsm_outcomes), "conforms": r.conforms}
         for r in results],
    ).render())


@pytest.mark.benchmark(group="jmm")
def test_relaxed_behaviours_exhibited(once):
    from repro.jmm.litmus import store_buffering

    res = once(run_conformance, store_buffering())
    # the runtime is genuinely weaker than sequential consistency
    assert (0, 0) in res.dsm_outcomes


@pytest.mark.benchmark(group="jmm")
def test_synchronised_tests_sequential(once):
    from repro.jmm.litmus import dekker_sync

    res = once(run_conformance, dekker_sync())
    assert res.dsm_outcomes == {(1, 0), (0, 1)}
