#!/usr/bin/env python
"""Distributed LTS generation, as on the paper's CWI cluster.

The paper generated its larger state spaces with the muCRL *distributed*
instantiator on an eight-node cluster. This example runs the same
hash-partitioned algorithm with local worker processes on the protocol's
configuration 2, compares it against serial generation and bitstate
(supertrace) hashing, and reports partition balance — the health metric
of hash-based state ownership. It then kills one worker mid-sweep
through the fault-injection harness and shows the recovered run is
still exact — cluster sweeps are only usable when partial progress
survives faults.

Run:  python examples/distributed_generation.py [--workers 4]
"""

import argparse
import dataclasses
import time

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_2, JackalModel, ProtocolVariant
from repro.lts.bitstate import bitstate_explore
from repro.lts.distributed import distributed_explore
from repro.lts.explore import ExplorationStats, explore
from repro.lts.faults import FaultPlan


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--workers", type=int, default=4)
    args = ap.parse_args()

    cfg = dataclasses.replace(CONFIG_2, rounds=2, with_probes=False)
    model = JackalModel(cfg, ProtocolVariant.fixed())
    table = Table(
        f"generation strategies on configuration 2 ({cfg.describe()})",
        ["strategy", "states", "transitions", "seconds", "notes"],
    )

    st = ExplorationStats()
    explore(model, stats=st)
    table.add(strategy="serial BFS", states=st.states,
              transitions=st.transitions, seconds=round(st.seconds, 2),
              notes=f"{st.states_per_second():,.0f} states/s")

    _lts, dstats = distributed_explore(
        model, n_workers=args.workers, backend="process"
    )
    table.add(
        strategy=f"distributed ({args.workers} workers)",
        states=dstats.states,
        transitions=dstats.transitions,
        seconds=round(dstats.seconds, 2),
        notes=f"imbalance {dstats.imbalance():.2f}, {dstats.levels} levels",
    )

    _lts, fstats = distributed_explore(
        model, n_workers=args.workers, backend="process",
        faults=FaultPlan.parse("kill:0@2"),
    )
    table.add(
        strategy="distributed, worker 0 killed",
        states=fstats.states,
        transitions=fstats.transitions,
        seconds=round(fstats.seconds, 2),
        notes=f"{fstats.worker_deaths} death(s), "
        f"{fstats.redispatched_batches} batches re-dispatched, "
        f"recovered={fstats.recovered}",
    )

    t0 = time.perf_counter()
    bres = bitstate_explore(model, table_bytes=1 << 20)
    table.add(
        strategy="bitstate (1 MiB table)",
        states=bres.visited,
        transitions=bres.transitions,
        seconds=round(time.perf_counter() - t0, 2),
        notes=f"fill {bres.fill_ratio:.4f}, omissions possible",
    )

    print(table.render())
    assert dstats.states == st.states, "partitioned sweep must be exact"
    assert fstats.states == st.states, "crash recovery must stay exact"
    coverage = bres.visited / st.states
    print(f"\nbitstate coverage: {coverage:.2%} of the exact state count")


if __name__ == "__main__":
    main()
