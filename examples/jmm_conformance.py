#!/usr/bin/env python
"""Does the Jackal runtime implement the Java Memory Model?

The paper's stated future work (Section 6) is "verifying whether the
cache coherence protocol implements the JMM in [9, Chapter 17]". This
example runs that check at the value level: for each bundled litmus
program, every outcome the simulated Jackal runtime (regions, twins,
diffs, flush lists, self-invalidation) can produce must be an outcome
the abstract JMM machine allows.

Run:  python examples/jmm_conformance.py
"""

from repro.analysis.reporting import Table
from repro.jmm import LITMUS_TESTS, run_conformance


def main() -> None:
    table = Table(
        "DSM runtime vs. abstract JMM (outcome sets per litmus test)",
        ["test", "jmm_outcomes", "dsm_outcomes", "conforms", "relaxed_outcome"],
    )
    all_ok = True
    for test in LITMUS_TESTS():
        res = run_conformance(test)
        all_ok &= res.conforms
        table.add(
            test=test.name,
            jmm_outcomes=len(res.jmm_outcomes),
            dsm_outcomes=len(res.dsm_outcomes),
            conforms=res.conforms,
            relaxed_outcome=str(sorted(res.dsm_outcomes)[0]) if res.dsm_outcomes else "",
        )
        print(f"{res.summary()}")
        if test.description:
            print(f"    ({test.description})")
    print()
    print(table.render())
    print()
    verdict = "IMPLEMENTS" if all_ok else "VIOLATES"
    print(f"conclusion: on these programs the simulated runtime {verdict} the JMM")


if __name__ == "__main__":
    main()
