#!/usr/bin/env python
"""Load a textual specification and run the full verification pipeline.

The paper's protocol model is an 1800-line *textual* muCRL
specification. This example shows the same workflow on the bundled
alternating-bit-protocol spec (``examples/specs/abp.mcrl``): parse,
instantiate, check for deadlocks, model check a requirement-style
formula, reduce modulo branching bisimulation, and confirm the
classical correctness statement against a one-place buffer.

Run:  python examples/text_spec.py
"""

from pathlib import Path

from repro.algebra import parse_mcrl
from repro.algebra.examples import one_place_buffer
from repro.lts import explore, find_deadlocks, minimize_branching
from repro.lts.reduction import bisimilar
from repro.mucalc import holds, parse_formula

SPEC = Path(__file__).resolve().parent / "specs" / "abp.mcrl"


def main() -> None:
    print(f"loading {SPEC.name} ...")
    module = parse_mcrl(SPEC.read_text())
    print(f"  sorts: {', '.join(module.sorts)}")
    print(f"  processes: {', '.join(module.spec.process_names())}")

    system = module.system()
    lts = explore(system)
    print(f"instantiated: {lts.n_states} states, {lts.n_transitions} transitions")

    print(find_deadlocks(lts).summary())

    safety = parse_formula("[(not in(1))*.out(1)] F")
    print(f"no message invention ([(not in(1))*.out(1)] F): {holds(lts, safety)}")

    liveness = parse_formula("[T*.in(0).(not out(0))*] <T*.out(0)> T")
    print(f"delivery stays possible: {holds(lts, liveness)}")

    reduced = minimize_branching(lts)
    print(
        f"branching reduction: {lts.n_states} -> {reduced.n_states} states"
    )
    ok = bisimilar(lts, explore(one_place_buffer()), kind="branching")
    print(f"branching-bisimilar to a one-place buffer: {ok}")


if __name__ == "__main__":
    main()
