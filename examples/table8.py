#!/usr/bin/env python
"""Regenerate the paper's Table 8: LTS sizes and requirements checked.

The paper generated LTSs for three configurations on a CWI cluster and
reports states, transitions, and which requirements were checked:

    Config.  states       transitions   Req. checked
    1        65,234       360,162       1, 2, 3, 4
    2        5,424,848    40,476,069    1, 2, 3, 4
    3        36,371,052   290,181,444   1, 2

Our model is smaller per configuration (less interleaving granularity
than the 1800-line muCRL specification), but the *shape* is preserved:
sizes grow by orders of magnitude from configuration 1 to 3, and the
largest configuration is only checked for requirements 1 and 2 (as in
the paper). Pass ``--rounds N`` to scale thread workloads, ``--cyclic``
for the paper's recursive threads.

Run:  python examples/table8.py [--rounds 2] [--cyclic]
"""

import argparse
import dataclasses
import time

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, CONFIG_2, CONFIG_3, ProtocolVariant
from repro.jackal.requirements import check_all_requirements

PAPER = {
    "1": (65_234, 360_162, "1, 2, 3, 4"),
    "2": (5_424_848, 40_476_069, "1, 2, 3, 4"),
    "3": (36_371_052, 290_181_444, "1, 2"),
}


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--rounds", type=int, default=2,
                    help="write+flush rounds per thread (default 2)")
    ap.add_argument("--cyclic", action="store_true",
                    help="cyclic threads as in the paper's muCRL spec")
    args = ap.parse_args()
    rounds = None if args.cyclic else args.rounds

    configs = [("1", CONFIG_1, ()), ("2", CONFIG_2, ()), ("3", CONFIG_3, ("3.1", "3.2", "4"))]
    table = Table(
        f"Table 8 reproduction (fixed protocol, rounds={'inf' if rounds is None else rounds})",
        ["config", "states", "transitions", "req_checked", "all_hold",
         "seconds", "paper_states", "paper_transitions", "paper_req"],
    )
    for name, cfg, skip in configs:
        cfg = dataclasses.replace(cfg, rounds=rounds)
        t0 = time.perf_counter()
        res = check_all_requirements(cfg, ProtocolVariant.fixed(), skip=skip)
        dt = time.perf_counter() - t0
        states = max(r.lts_states for r in res.values())
        transitions = max(r.lts_transitions for r in res.values())
        ps, pt, pr = PAPER[name]
        table.add(
            config=name,
            states=states,
            transitions=transitions,
            req_checked=", ".join(sorted(res)),
            all_hold=all(r.holds for r in res.values()),
            seconds=round(dt, 1),
            paper_states=ps,
            paper_transitions=pt,
            paper_req=pr,
        )
        print(f"config {name} done in {dt:.1f}s")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
