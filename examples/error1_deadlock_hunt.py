#!/usr/bin/env python
"""Error 1, end to end: find the deadlock, then *understand* it.

Reproduces Section 5.4.1 of the paper: on a configuration of two
processors with one (cyclic) thread each, the original implementation
deadlocks — a thread that waited for its processor's fault lock misses
the home migrating onto its own processor, continues down the
remote-write path, and waits forever for a Data Return nobody will send.

The paper's authors complain that interpreting such traces "took us a
lot of time, since many of the traces were quite long". This example
runs the deadlock hunt and then narrates the shortest error trace with
the trace explainer, step by step, with protocol context.

Run:  python examples/error1_deadlock_hunt.py
"""

import dataclasses

from repro.analysis.explain import narrate_trace
from repro.jackal import CONFIG_1, JackalModel, ProtocolVariant
from repro.jackal.requirements import build_model, check_requirement_1


def main() -> None:
    cyclic = dataclasses.replace(CONFIG_1, rounds=None)

    print("hunting for deadlocks in the original implementation...")
    buggy = check_requirement_1(cyclic, ProtocolVariant.error1())
    print(" ", buggy.summary())
    assert not buggy.holds, "the historical bug should be found"

    print()
    print("the same hunt on the repaired protocol:")
    fixed = check_requirement_1(cyclic, ProtocolVariant.fixed())
    print(" ", fixed.summary())
    assert fixed.holds

    print()
    print("narrated shortest error trace")
    print("-----------------------------")
    model = build_model(cyclic, ProtocolVariant.error1(), probes=False)
    print(narrate_trace(model, buggy.trace))

    print()
    print(
        "note the 'stale_remote_wait' steps: each thread holds its fault\n"
        "lock while the region's home has just migrated onto its own\n"
        "processor — the exact scenario of the paper's first error. The\n"
        "fix (ProtocolVariant.fixed()) re-checks the home after the fault\n"
        "lock is granted and switches to the server lock."
    )


if __name__ == "__main__":
    main()
