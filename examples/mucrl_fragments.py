#!/usr/bin/env python
"""The paper's muCRL specification style, executable.

Rebuilds the specification fragments shown in the paper's Tables 1, 2
and 6 with the :mod:`repro.algebra` process algebra — processes with
data parameters, summation, the conditional, parallel composition under
a communication function, and encapsulation — then instantiates and
analyses them:

* the Table-6 protocol lock manager is checked for deadlock freedom and
  the fault/flush mutual exclusion;
* the Table-2 region process is shown to serialise thread accesses;
* the composed LTSs are printed in CADP's .aut format, the exchange
  format the paper's toolchain used.

Run:  python examples/mucrl_fragments.py
"""

from repro.jackal.mucrl_spec import (
    locker_system,
    region_system,
    thread_write_remote_spec,
)
from repro.lts.aut import write_aut
from repro.lts.deadlock import find_deadlocks
from repro.lts.explore import explore
from repro.lts.reduction import minimize_branching
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula


def main() -> None:
    print("== Table 1: WriteRemote (specification text) ==")
    for d in thread_write_remote_spec().defs:
        print(" ", d)

    print()
    print("== Table 6: the protocol lock manager ==")
    sys = locker_system(n_faulters=2, n_flushers=1)
    lts = explore(sys)
    print(f"  composed LTS: {lts.n_states} states, {lts.n_transitions} transitions")
    print(f"  {find_deadlocks(lts).summary()}")
    mutex = parse_formula(
        "[T*.(c_no_faultwait|c_signal_faultwait)"
        ".(not c_free_faultlock)*"
        ".(c_no_flushwait|c_signal_flushwait)] F"
    )
    print(f"  fault/flush mutual exclusion: {holds(lts, mutex)}")
    reduced = minimize_branching(lts.hidden(
        [l for l in lts.labels if l.startswith(("c_require", "queued"))]
    ))
    print(f"  after hiding requests + branching minimisation: "
          f"{reduced.n_states} states, {reduced.n_transitions} transitions")

    print()
    print("== Table 2: the region process, serialising accesses ==")
    rsys = region_system()
    rlts = explore(rsys)
    print(f"  composed LTS: {rlts.n_states} states, {rlts.n_transitions} transitions")
    print("  .aut rendering (as consumed by CADP):")
    for line in write_aut(rlts).splitlines()[:8]:
        print("   ", line)
    print("    ...")


if __name__ == "__main__":
    main()
