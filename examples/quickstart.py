#!/usr/bin/env python
"""Quickstart: explore the Jackal protocol and check the paper's requirements.

Builds the paper's configuration 1 (two processors, one thread each),
generates its state space, and model checks all four requirements of
Section 5.3 — first on the repaired protocol, then on the original
(buggy) implementation to rediscover both historical errors.

Run:  python examples/quickstart.py
"""

from repro.analysis.reporting import Table
from repro.jackal import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.jackal.requirements import (
    check_all_requirements,
    check_requirement_1,
    check_requirement_3_2,
)


def main() -> None:
    print("== The repaired protocol on configuration 1 ==")
    results = check_all_requirements(CONFIG_1, ProtocolVariant.fixed())
    table = Table(
        "requirements (fixed protocol, 2 processors x 1 thread)",
        ["requirement", "verdict", "states", "transitions"],
    )
    for rep in results.values():
        table.add(
            requirement=rep.requirement,
            verdict="HOLDS" if rep.holds else "VIOLATED",
            states=rep.lts_states,
            transitions=rep.lts_transitions,
        )
    print(table.render())

    print()
    print("== Rediscovering Error 1 (deadlock) ==")
    import dataclasses

    cyclic = dataclasses.replace(CONFIG_1, rounds=None)
    rep = check_requirement_1(cyclic, ProtocolVariant.error1())
    print(rep.summary())
    if rep.trace:
        print(f"shortest error trace: {len(rep.trace)} transitions; last steps:")
        for line in rep.trace.format().splitlines()[-5:]:
            print("   ", line)

    print()
    print("== Rediscovering Error 2 (lost home, Requirement 3.2) ==")
    rep2 = check_requirement_3_2(CONFIG_2, ProtocolVariant.error2())
    print(rep2.summary())
    if rep2.trace:
        print(f"witness: {len(rep2.trace)} transitions to a stable homeless state")

    print()
    print("Both errors vanish with the fixes applied:")
    print(" ", check_requirement_1(cyclic, ProtocolVariant.fixed()).summary())
    print(" ", check_requirement_3_2(CONFIG_2, ProtocolVariant.fixed()).summary())


if __name__ == "__main__":
    main()
