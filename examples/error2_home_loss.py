#!/usr/bin/env python
"""Error 2, end to end: the Region Sponmigrate / Data Return race.

Reproduces Section 5.4.3 of the paper: model checking the property

    <T*> (<c_copy>T /\\ <lock_empty>T /\\ <homequeue_empty>T
          /\\ <remotequeue_empty>T)

on a configuration with two threads on one processor and a third on the
other finds a *stable* state in which neither processor is the home of
the region: a thread waiting for a Data Return had its processor become
the home via a Region Sponmigrate, and the stale reply then overwrote
the home pointer with the sender.

Run:  python examples/error2_home_loss.py
"""

from repro.analysis.explain import narrate_trace
from repro.jackal import CONFIG_2, ProtocolVariant
from repro.jackal.requirements import (
    build_model,
    check_requirement_3_1,
    check_requirement_3_2,
)
from repro.lts.trace import replay


def main() -> None:
    print("checking requirement 3.2 on the pre-fix protocol (config 2)...")
    bad = check_requirement_3_2(CONFIG_2, ProtocolVariant.error2())
    print(" ", bad.summary())
    assert not bad.holds

    print()
    print("requirement 3.1 (at most one home) still holds — the bug loses")
    print("the home rather than duplicating it:")
    print(" ", check_requirement_3_1(CONFIG_2, ProtocolVariant.error2()).summary())

    print()
    print("witness trace to the homeless stable state")
    print("------------------------------------------")
    model = build_model(CONFIG_2, ProtocolVariant.error2(), probes=True)
    print(narrate_trace(model, bad.trace))

    t = replay(model, bad.trace.labels)
    d = model.decode_state(t.final_state)
    print()
    print("final home pointers per processor:",
          [d["copies"][p][0]["home"] for p in range(model.n_proc)])
    print("(no pointer equals its own processor: the home is gone)")

    print()
    print("with the fix (sponmigrate informs waiting threads):")
    print(" ", check_requirement_3_2(CONFIG_2, ProtocolVariant.fixed()).summary())


if __name__ == "__main__":
    main()
