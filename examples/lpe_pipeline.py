#!/usr/bin/env python
"""Linearization and the expansion theorem, end to end.

The muCRL toolset never explores raw process terms: it first rewrites
the specification into a *linear process equation* (LPE) — a flat list
of condition/action/effect summands — and eliminates the parallel
operator with the expansion theorem. This example runs that pipeline on
the alternating bit protocol:

1. linearise the four components (sender, receiver, two lossy channels);
2. print their summand lists (the muCRL "linear form");
3. compose them with the expansion theorem + encapsulation + hiding;
4. instantiate and verify: strongly bisimilar to the direct SOS
   semantics, branching-bisimilar to a one-place buffer — and, with
   divergence-sensitive branching bisimulation, *not* equivalent
   (the lossy channels can babble forever: the fairness assumption,
   made visible).

Run:  python examples/lpe_pipeline.py
"""

from repro.algebra import Call, Comm, encapsulate, hide_actions, linearize, parallel_expand
from repro.algebra.examples import alternating_bit_protocol, one_place_buffer
from repro.lts import explore
from repro.lts.reduction import bisimilar

BLOCKED = [
    "s_frame", "k_in", "k_out", "r_frame", "k_err", "r_frame_err",
    "s_ack", "l_in", "l_out", "r_ack", "l_err", "r_ack_err",
]
INTERNAL = [
    "c_frame_in", "c_frame_out", "c_frame_err",
    "c_ack_in", "c_ack_out", "c_ack_err",
]
COMM = Comm(
    ("s_frame", "k_in", "c_frame_in"),
    ("k_out", "r_frame", "c_frame_out"),
    ("k_err", "r_frame_err", "c_frame_err"),
    ("s_ack", "l_in", "c_ack_in"),
    ("l_out", "r_ack", "c_ack_out"),
    ("l_err", "r_ack_err", "c_ack_err"),
)


def main() -> None:
    direct = alternating_bit_protocol()
    spec = direct.spec

    components = {
        "Send(0)": linearize(spec, Call("Send", 0)),
        "K": linearize(spec, Call("K")),
        "L": linearize(spec, Call("L")),
        "Recv(0)": linearize(spec, Call("Recv", 0)),
    }
    for name, lpe in components.items():
        print(f"== {name}: {len(lpe.summands)} summands over "
              f"{lpe.n_positions()} positions ==")
        print(lpe.describe())
        print()

    prod = parallel_expand(
        parallel_expand(
            parallel_expand(components["Send(0)"], components["K"], COMM),
            components["L"],
            COMM,
        ),
        components["Recv(0)"],
        COMM,
    )
    prod = hide_actions(encapsulate(prod, BLOCKED), INTERNAL)
    lts = explore(prod)
    print(f"expanded product: {lts.n_states} states, "
          f"{lts.n_transitions} transitions")

    direct_lts = explore(direct)
    buffer = explore(one_place_buffer())
    print("strongly bisimilar to the direct SOS semantics:",
          bisimilar(lts, direct_lts, kind="strong"))
    print("branching-bisimilar to a one-place buffer:",
          bisimilar(lts, buffer, kind="branching"))
    print("divergence-sensitive equivalent to the buffer:",
          bisimilar(lts, buffer, kind="branching-div"),
          "(false: the lossy channels may babble forever)")


if __name__ == "__main__":
    main()
