#!/usr/bin/env python
"""Flight-recorder round trip: record a verification run, replay the trace.

The muCRL/CADP toolchain the paper used printed its instantiation
progress to the terminal and was gone; anything you wanted to know
afterwards — where the time went, how the frontier grew, which
fixpoint dominated — had to be re-run. This example records a full
verification session (exploration + requirement checks) into a JSONL
trace plus a metrics snapshot, then *replays* the trace offline: the
depth-wave table, the per-phase timing breakdown (successor generation
vs dedup vs transport), and the requirement-check summary, all without
touching the model again.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.jackal import CONFIG_1, JackalModel, ProtocolVariant
from repro.jackal.requirements import check_requirement_1, check_requirement_2
from repro.lts.engine import explore_fast


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "session.jsonl"

    # -- record: one instrumented verification session ----------------------
    registry = obs.MetricsRegistry()
    inst = obs.Instrumentation(
        metrics=registry, tracer=obs.Tracer(trace_path)
    )
    with inst, obs.activate(inst):
        model = JackalModel(CONFIG_1, ProtocolVariant.fixed())
        explore_fast(model)
        check_requirement_1(CONFIG_1)
        check_requirement_2(CONFIG_1)
    metrics_path = workdir / "metrics.prom"
    metrics_path.write_text(registry.render_prometheus())
    print(f"recorded: {trace_path}")
    print(f"recorded: {metrics_path}")
    print()

    # -- replay: everything below comes from the files alone ----------------
    events = obs.read_trace(trace_path)
    print(obs.render_report(events))
    print()

    phases = obs.phase_breakdown(events)
    print("phase breakdown (replayed from the trace):")
    for key, seconds in phases.items():
        print(f"  {key:<14} {seconds:.4f} s")
    print()

    waves = [e for e in events if e["ev"] == "wave"]
    widest = max(waves, key=lambda w: w["frontier"])
    print(
        f"widest BFS wave: depth {widest['depth']} with a frontier of "
        f"{widest['frontier']:,} states"
    )

    # ring mode: the bounded black box for sweeps too large to trace
    ring = obs.Tracer(ring=8)
    with obs.Instrumentation(tracer=ring) as bounded:
        explore_fast(model, obs=bounded)
    print(
        f"ring mode kept the last {len(ring.events())} of the sweep's "
        f"events (bounded memory)"
    )


if __name__ == "__main__":
    main()
